//===- pipeline/Pipeline.cpp ----------------------------------------------===//

#include "pipeline/Pipeline.h"

#include "codegen/Vectorizer.h"
#include "exec/Interpreter.h"
#include "obs/Trace.h"

#include <cstdio>

using namespace pinj;

namespace {

/// True if the schedule can be generated and simulated by the backend:
/// unit/constant rows only, and statements sharing a loop dimension
/// agree on its extent.
bool backendAccepts(const Kernel &K, const Schedule &S) {
  if (!isGeneratableSchedule(K, S))
    return false;
  for (unsigned D = 0, ND = S.numDims(); D != ND; ++D) {
    Int Extent = 0;
    for (unsigned Stmt = 0, E = K.Stmts.size(); Stmt != E; ++Stmt) {
      RowShape Shape = analyzeRow(K, S, Stmt, D);
      if (Shape.Kind != RowShape::Unit)
        continue;
      Int StmtExtent = K.Stmts[Stmt].Extents[Shape.Iter];
      if (Extent != 0 && StmtExtent != Extent)
        return false;
      Extent = StmtExtent;
    }
  }
  return true;
}

bool sameTransforms(const Schedule &A, const Schedule &B) {
  if (A.Transforms.size() != B.Transforms.size())
    return false;
  for (unsigned S = 0, E = A.Transforms.size(); S != E; ++S)
    if (!(A.Transforms[S] == B.Transforms[S]))
      return false;
  return true;
}

ConfigResult simulateConfig(const Kernel &K, const Schedule &S,
                            const PipelineOptions &Options) {
  ConfigResult Result;
  Result.Sched = S;
  MappedKernel M = mapToGpu(K, S, Options.Mapping);
  Result.Sim = simulateKernel(M, Options.Gpu);
  Result.TimeUs = Result.Sim.TimeUs;
  return Result;
}

} // namespace

SchedulerResult pinj::scheduleInfluenced(const Kernel &K,
                                         const PipelineOptions &Options) {
  InfluenceTree Tree = buildInfluenceTree(K, Options.Influence);
  SchedulerOptions Sched = Options.Sched;
  Sched.SerializeSccs = false; // Let fusion constraints take effect.
  return scheduleKernel(K, Sched, &Tree);
}

std::string pinj::renderCuda(const Kernel &K, const Schedule &S,
                             const GpuMappingOptions &Mapping) {
  MappedKernel M = mapToGpu(K, S, Mapping);
  return printCuda(M);
}

OperatorReport pinj::runOperator(const Kernel &K,
                                 const PipelineOptions &Options) {
  obs::Span Op("pipeline.operator");
  if (Op.active())
    Op.arg("name", K.Name);
  obs::MetricsRegistry &M = obs::metrics();
  static obs::Counter &Operators = M.counter("pipeline.operators");
  Operators.inc();
  obs::MetricsSnapshot Begin = M.snapshot();

  OperatorReport Report;
  Report.Name = K.Name;

  // Reference configuration: plain scheduling, SCCs serialized up front
  // (the isl behaviour observed in the paper's Fig. 2(b)).
  SchedulerResult IslRun;
  {
    obs::Span Cfg("pipeline.config.isl");
    SchedulerOptions IslOptions = Options.Sched;
    IslOptions.SerializeSccs = true;
    IslRun = scheduleKernel(K, IslOptions);
    finalizeVectorMarks(K, IslRun.Sched, /*DisableVectorization=*/true);
    assert(backendAccepts(K, IslRun.Sched) &&
           "reference schedule must be generatable");
    Report.Isl = simulateConfig(K, IslRun.Sched, Options);
    Report.Isl.Stats = IslRun.Stats;
  }
  obs::MetricsSnapshot AfterIsl = M.snapshot();
  Report.Isl.Metrics = AfterIsl.since(Begin);

  // Influenced scheduling (shared by novec and infl).
  SchedulerResult InflRun;
  {
    obs::Span Cfg("pipeline.config.novec");
    InflRun = scheduleInfluenced(K, Options);
    if (!backendAccepts(K, InflRun.Sched)) {
      // The influenced schedule fused statements the backend cannot
      // generate together; fall back to the reference schedule.
      InflRun.Sched = IslRun.Sched;
      InflRun.ReachedLeaf = nullptr;
    }
    Report.Influenced = !sameTransforms(InflRun.Sched, IslRun.Sched);

    Schedule NovecSched = InflRun.Sched;
    finalizeVectorMarks(K, NovecSched, /*DisableVectorization=*/true);
    Report.Novec = simulateConfig(K, NovecSched, Options);
    Report.Novec.Stats = InflRun.Stats;
  }
  obs::MetricsSnapshot AfterNovec = M.snapshot();
  Report.Novec.Metrics = AfterNovec.since(AfterIsl);

  Schedule InflSched = InflRun.Sched;
  {
    obs::Span Cfg("pipeline.config.infl");
    Report.VecEligible =
        finalizeVectorMarks(K, InflSched, /*DisableVectorization=*/false) > 0;
    Report.Infl = simulateConfig(K, InflSched, Options);
    Report.Infl.Stats = InflRun.Stats;
  }
  Report.Infl.Metrics = M.snapshot().since(AfterNovec);

  // Manual-schedule proxy.
  {
    obs::Span Cfg("pipeline.config.tvm");
    Report.Tvm = simulateTvmProxy(K, Options.Gpu, Options.Mapping);
  }

  if (Options.Validate) {
    obs::Span Val("pipeline.validate");
    Report.Validated = scheduleIsSemanticallyEqual(K, IslRun.Sched) &&
                       scheduleIsSemanticallyEqual(K, InflSched);
  }

  Report.Metrics = M.snapshot().since(Begin);
  if (Options.Sink)
    Options.Sink->add(toSinkRecord(Report));
  return Report;
}

namespace {

obs::ConfigRecord toConfigRecord(const char *Name, const ConfigResult &R) {
  obs::ConfigRecord C;
  C.Name = Name;
  C.TimeUs = R.TimeUs;
  C.Transactions = R.Sim.Transactions;
  C.TransactionBytes = R.Sim.TransactionBytes;
  C.UsefulBytes = R.Sim.UsefulBytes;
  C.Metrics = R.Metrics;
  return C;
}

} // namespace

obs::OperatorRecord pinj::toSinkRecord(const OperatorReport &R) {
  obs::OperatorRecord Record;
  Record.Name = R.Name;
  Record.Influenced = R.Influenced;
  Record.VecEligible = R.VecEligible;
  Record.Validated = R.Validated;
  Record.Configs.push_back(toConfigRecord("isl", R.Isl));
  Record.Configs.push_back(toConfigRecord("novec", R.Novec));
  Record.Configs.push_back(toConfigRecord("infl", R.Infl));
  obs::ConfigRecord Tvm;
  Tvm.Name = "tvm";
  Tvm.TimeUs = R.Tvm.TimeUs;
  Record.Configs.push_back(std::move(Tvm));
  Record.Metrics = R.Metrics;
  return Record;
}

std::string pinj::printStatsTable(const OperatorReport &R) {
  char Buf[256];
  std::string Out;
  std::snprintf(Buf, sizeof(Buf), "%-6s %10s %13s %10s %10s %10s %9s\n",
                "config", "time_us", "transactions", "ilp_solves",
                "ilp_nodes", "pivots", "fallbacks");
  Out += Buf;
  auto Row = [&](const char *Name, const ConfigResult &C) {
    const SchedulerStats &S = C.Stats;
    unsigned long long Fallbacks = S.ProgressionDrops + S.SiblingMoves +
                                   S.BandBreaks + S.AncestorBacktracks +
                                   S.SccCuts;
    std::snprintf(Buf, sizeof(Buf),
                  "%-6s %10.2f %13.0f %10llu %10llu %10llu %9llu\n", Name,
                  C.TimeUs, C.Sim.Transactions,
                  static_cast<unsigned long long>(
                      C.Metrics.counter("lp.ilp_solves")),
                  static_cast<unsigned long long>(
                      C.Metrics.counter("lp.ilp_nodes")),
                  static_cast<unsigned long long>(
                      C.Metrics.counter("lp.simplex_pivots")),
                  Fallbacks);
    Out += Buf;
  };
  Row("isl", R.Isl);
  Row("novec", R.Novec);
  Row("infl", R.Infl);
  std::snprintf(Buf, sizeof(Buf), "%-6s %10.2f %13s (%u launches)\n", "tvm",
                R.Tvm.TimeUs, "-", R.Tvm.Launches);
  Out += Buf;
  return Out;
}
