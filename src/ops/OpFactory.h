//===- ops/OpFactory.h - Fused AI/DL operator families ----------*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameterized families of fused operators shaped like what
/// MindSpore's graph-kernel fusion hands to AKG: element-wise chains,
/// broadcast (bias) chains, layout-hostile copies/permutes produced by
/// fused transpose chains (the operator inherits the producer's
/// iteration order, which is strided for every access — the pattern
/// behind the paper's large ResNet speedups), reduction tails, and the
/// running example itself.
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_OPS_OPFACTORY_H
#define POLYINJECT_OPS_OPFACTORY_H

#include "ir/Builder.h"

namespace pinj {

/// The paper's running example, fused_mul_sub_mul_tensoradd from BERT
/// (Fig. 2(a)), with square extents N.
Kernel makeFusedMulSubMulTensorAdd(Int N);

/// A chain of \p Length element-wise statements over (Rows, Cols)
/// tensors; op kinds vary deterministically with \p Seed.
Kernel makeElementwiseChain(const std::string &Name, Int Rows, Int Cols,
                            unsigned Length, unsigned Seed);

/// OUT[i][j] = op(IN[i][j], BIAS[j]) followed by an activation — the
/// classic broadcast epilogue fusion.
Kernel makeBiasActivation(const std::string &Name, Int Rows, Int Cols,
                          unsigned Seed);

/// A 2D operator iterating in its producer's (transposed) order: both
/// accesses are strided along the original innermost loop. A plain
/// polyhedral scheduler keeps the order; the influenced one repairs it.
Kernel makeHostileOrderCopy(const std::string &Name, Int H, Int W,
                            unsigned Seed);

/// 3D variant of the layout-hostile family, shaped like an NCHW <-> NHWC
/// boundary inside a fused transpose chain.
Kernel makeHostileOrderPermute3D(const std::string &Name, Int C, Int H,
                                 Int W, unsigned Seed);

/// A 3D element-wise operator whose tensor layout is [h][c][w] while the
/// iteration order is (c, h, w): the innermost w is already contiguous,
/// but the influence cost model reorders the outer dimensions (smaller
/// strides first), changing the schedule with little performance effect
/// — the "influenced, near-neutral" population of MobileNet-like
/// suites in Table II.
Kernel makeMiddlePermuted3D(const std::string &Name, Int C, Int H, Int W,
                            unsigned Seed);

/// Element-wise stage followed by a row reduction (softmax/norm tails).
Kernel makeReduceTail(const std::string &Name, Int Rows, Int Cols,
                      unsigned Seed);

/// A softmax-shaped three-stage fusion: element-wise exp, a row
/// reduction of the result, and a normalization stage that reads the
/// finished row value — the last dependence forces the scheduler to
/// distribute the normalization from the reduction (every j of NORM
/// depends on every j of RED).
Kernel makeSoftmaxLike(const std::string &Name, Int Rows, Int Cols);

/// Two same-shape statements in producer/consumer relation: the plain
/// scheduler distributes them, influence fuses them (a schedule change
/// with near-neutral simulated cost — the "influenced, tiny speedup"
/// population of MobileNet-like networks).
Kernel makeProducerConsumerPair(const std::string &Name, Int Rows,
                                Int Cols, unsigned Seed);

} // namespace pinj

#endif // POLYINJECT_OPS_OPFACTORY_H
