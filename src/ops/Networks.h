//===- ops/Networks.h - Table I / Table II network suites -------*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthetic per-network populations of fused operators standing in for
/// the MindSpore ModelZoo workloads of the paper's Table I. The mixes
/// are structurally faithful to Table II's operator counts:
///   - the `total` column fixes the number of fused operators,
///   - operators whose schedule the influence machinery does not change
///     (long element-wise fusions with isl-identical schedules) make up
///     `total - infl`,
///   - `vec` of the influenced operators are vectorization-eligible,
/// and the operator families are chosen so the per-network behaviour
/// matches the paper's analysis: transpose-heavy ResNets dominated by
/// layout-hostile permutes (large influenced speedups), BERT dominated
/// by long already-coalesced element-wise chains (modest speedups, and
/// a heavy unfused penalty for the TVM proxy), tiny launch-bound LSTM
/// operators, and near-neutral reorderings for MobileNet-like suites.
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_OPS_NETWORKS_H
#define POLYINJECT_OPS_NETWORKS_H

#include "ops/OpFactory.h"

namespace pinj {

/// One end-to-end workload of the paper's Table I.
struct NetworkSuite {
  std::string Name;
  std::string Type;    ///< "nlp" or "cv".
  std::string Dataset; ///< As listed in Table I.
  std::vector<Kernel> Operators;
};

/// Builds the suite for one of: bert, lstm, mobilenetv2, resnet50,
/// resnet101, resnext50, vgg16. Aborts on unknown names.
NetworkSuite makeNetworkSuite(const std::string &Name);

/// All seven network names in the paper's Table I/II order.
std::vector<std::string> allNetworkNames();

} // namespace pinj

#endif // POLYINJECT_OPS_NETWORKS_H
