//===- ops/OpFactory.cpp --------------------------------------------------===//

#include "ops/OpFactory.h"

using namespace pinj;

namespace {

/// Deterministic tiny PRNG for op-kind variety.
struct Rng {
  unsigned State;
  explicit Rng(unsigned Seed) : State(Seed * 2654435761u + 97u) {}
  unsigned next(unsigned Bound) {
    State = State * 1664525u + 1013904223u;
    return (State >> 16) % Bound;
  }
};

OpKind pickUnary(Rng &R) {
  static const OpKind Kinds[] = {OpKind::Relu, OpKind::Exp, OpKind::Neg,
                                 OpKind::Rsqrt, OpKind::Assign};
  return Kinds[R.next(5)];
}

OpKind pickBinary(Rng &R) {
  static const OpKind Kinds[] = {OpKind::Add, OpKind::Sub, OpKind::Mul,
                                 OpKind::Max, OpKind::Min};
  return Kinds[R.next(5)];
}

} // namespace

Kernel pinj::makeFusedMulSubMulTensorAdd(Int N) {
  KernelBuilder B("fused_mul_sub_mul_tensoradd");
  unsigned A = B.tensor("A", {N, N});
  unsigned Bt = B.tensor("B", {N, N});
  unsigned C = B.tensor("C", {N, N});
  unsigned D = B.tensor("D", {N, N, N});
  B.stmt("X", {{"i", N}, {"k", N}})
      .write(Bt, {"i", "k"})
      .read(A, {"i", "k"})
      .op(OpKind::Relu);
  B.stmt("Y", {{"i", N}, {"j", N}, {"k", N}})
      .write(C, {"i", "j"})
      .read(C, {"i", "j"})
      .read(Bt, {"i", "k"})
      .read(D, {"k", "i", "j"})
      .op(OpKind::Fma);
  return B.build();
}

Kernel pinj::makeElementwiseChain(const std::string &Name, Int Rows,
                                  Int Cols, unsigned Length,
                                  unsigned Seed) {
  assert(Length >= 1 && "chain needs at least one statement");
  Rng R(Seed);
  KernelBuilder B(Name);
  std::vector<unsigned> Temps;
  Temps.push_back(B.tensor("IN", {Rows, Cols}));
  for (unsigned S = 0; S != Length; ++S)
    Temps.push_back(
        B.tensor(S + 1 == Length ? "OUT" : "T" + std::to_string(S + 1),
                 {Rows, Cols}));
  unsigned Second = B.tensor("IN2", {Rows, Cols});
  for (unsigned S = 0; S != Length; ++S) {
    bool Binary = R.next(3) == 0;
    KernelBuilder &Stmt =
        B.stmt("S" + std::to_string(S), {{"i", Rows}, {"j", Cols}})
            .write(Temps[S + 1], {"i", "j"})
            .read(Temps[S], {"i", "j"});
    if (Binary)
      Stmt.read(Second, {"i", "j"}).op(pickBinary(R));
    else
      Stmt.op(pickUnary(R));
  }
  return B.build();
}

Kernel pinj::makeBiasActivation(const std::string &Name, Int Rows, Int Cols,
                                unsigned Seed) {
  Rng R(Seed);
  KernelBuilder B(Name);
  unsigned In = B.tensor("IN", {Rows, Cols});
  unsigned Bias = B.tensor("BIAS", {Cols});
  unsigned Tmp = B.tensor("T1", {Rows, Cols});
  unsigned Out = B.tensor("OUT", {Rows, Cols});
  B.stmt("ADD", {{"i", Rows}, {"j", Cols}})
      .write(Tmp, {"i", "j"})
      .read(In, {"i", "j"})
      .read(Bias, {"j"})
      .op(pickBinary(R));
  B.stmt("ACT", {{"i", Rows}, {"j", Cols}})
      .write(Out, {"i", "j"})
      .read(Tmp, {"i", "j"})
      .op(pickUnary(R));
  return B.build();
}

Kernel pinj::makeHostileOrderCopy(const std::string &Name, Int H, Int W,
                                  unsigned Seed) {
  Rng R(Seed);
  KernelBuilder B(Name);
  unsigned In = B.tensor("IN", {H, W});
  unsigned Out = B.tensor("OUT", {H, W});
  // The fused transpose chain iterates in the producer's order (w, h);
  // both [h][w] accesses are W-strided along the inner loop h.
  B.stmt("P", {{"w", W}, {"h", H}})
      .write(Out, {"h", "w"})
      .read(In, {"h", "w"})
      .op(pickUnary(R));
  return B.build();
}

Kernel pinj::makeHostileOrderPermute3D(const std::string &Name, Int C,
                                       Int H, Int W, unsigned Seed) {
  Rng R(Seed);
  KernelBuilder B(Name);
  unsigned In = B.tensor("IN", {C, H, W});
  unsigned Out = B.tensor("OUT", {C, H, W});
  // Iterates (w, c, h): the original innermost loop h strides by W on
  // both sides; the contiguous dimension w sits outermost.
  B.stmt("P", {{"w", W}, {"c", C}, {"h", H}})
      .write(Out, {"c", "h", "w"})
      .read(In, {"c", "h", "w"})
      .op(pickUnary(R));
  return B.build();
}

Kernel pinj::makeMiddlePermuted3D(const std::string &Name, Int C, Int H,
                                  Int W, unsigned Seed) {
  Rng R(Seed);
  KernelBuilder B(Name);
  unsigned In = B.tensor("IN", {H, C, W});
  unsigned Out = B.tensor("OUT", {H, C, W});
  B.stmt("E", {{"c", C}, {"h", H}, {"w", W}})
      .write(Out, {"h", "c", "w"})
      .read(In, {"h", "c", "w"})
      .op(pickUnary(R));
  return B.build();
}

Kernel pinj::makeReduceTail(const std::string &Name, Int Rows, Int Cols,
                            unsigned Seed) {
  Rng R(Seed);
  KernelBuilder B(Name);
  unsigned In = B.tensor("IN", {Rows, Cols});
  unsigned Tmp = B.tensor("T1", {Rows, Cols});
  unsigned One = B.tensor("ONE", {1});
  unsigned Out = B.tensor("OUT", {Rows});
  B.stmt("EW", {{"i", Rows}, {"j", Cols}})
      .write(Tmp, {"i", "j"})
      .read(In, {"i", "j"})
      .op(pickUnary(R));
  B.stmt("RED", {{"i", Rows}, {"j", Cols}})
      .write(Out, {"i"})
      .read(Out, {"i"})
      .read(Tmp, {"i", "j"})
      .read(One, {IndexExpr(Int(0))})
      .op(OpKind::Fma);
  return B.build();
}

Kernel pinj::makeSoftmaxLike(const std::string &Name, Int Rows,
                             Int Cols) {
  KernelBuilder B(Name);
  unsigned In = B.tensor("IN", {Rows, Cols});
  unsigned Tmp = B.tensor("T1", {Rows, Cols});
  unsigned One = B.tensor("ONE", {1});
  unsigned Row = B.tensor("R", {Rows});
  unsigned Out = B.tensor("OUT", {Rows, Cols});
  B.stmt("EXP", {{"i", Rows}, {"j", Cols}})
      .write(Tmp, {"i", "j"})
      .read(In, {"i", "j"})
      .op(OpKind::Exp);
  B.stmt("RED", {{"i", Rows}, {"j", Cols}})
      .write(Row, {"i"})
      .read(Row, {"i"})
      .read(Tmp, {"i", "j"})
      .read(One, {IndexExpr(Int(0))})
      .op(OpKind::Fma);
  B.stmt("NORM", {{"i", Rows}, {"j", Cols}})
      .write(Out, {"i", "j"})
      .read(Tmp, {"i", "j"})
      .read(Row, {"i"})
      .op(OpKind::Div);
  return B.build();
}

Kernel pinj::makeProducerConsumerPair(const std::string &Name, Int Rows,
                                      Int Cols, unsigned Seed) {
  Rng R(Seed);
  KernelBuilder B(Name);
  unsigned In = B.tensor("IN", {Rows, Cols});
  unsigned Tmp = B.tensor("T1", {Rows, Cols});
  unsigned Out = B.tensor("OUT", {Rows, Cols});
  B.stmt("P", {{"i", Rows}, {"j", Cols}})
      .write(Tmp, {"i", "j"})
      .read(In, {"i", "j"})
      .op(pickUnary(R));
  B.stmt("Q", {{"i", Rows}, {"j", Cols}})
      .write(Out, {"i", "j"})
      .read(Tmp, {"i", "j"})
      .read(Tmp, {"i", "j"})
      .op(pickBinary(R));
  return B.build();
}
