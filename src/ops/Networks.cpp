//===- ops/Networks.cpp ---------------------------------------------------===//

#include "ops/Networks.h"

using namespace pinj;

namespace {

/// Appends \p Count element-wise fusions with odd column counts: their
/// schedules match the reference scheduler's exactly (not influenced)
/// and odd extents make them ineligible for vector types. Length 1
/// gives the single-statement operators common in the cv networks
/// (TVM parity); longer chains model BERT's deep fusions (heavy TVM
/// launch/traffic penalty).
void addPlainChains(NetworkSuite &Suite, unsigned Count, Int Rows,
                    Int OddCols, unsigned MinLen, unsigned MaxLen,
                    unsigned SeedBase) {
  assert(OddCols % 2 == 1 && "plain chains need odd widths");
  for (unsigned I = 0; I != Count; ++I) {
    unsigned Length = MinLen + (SeedBase + I) % (MaxLen - MinLen + 1);
    Suite.Operators.push_back(makeElementwiseChain(
        Suite.Name + "_chain" + std::to_string(I), Rows, OddCols, Length,
        SeedBase + I));
  }
}

NetworkSuite makeBert() {
  NetworkSuite Suite{"BERT", "nlp", "zhwiki", {}};
  // 56 long element-wise fusions (not influenced, not vectorizable);
  // per-statement launches make the TVM proxy pay dearly here.
  addPlainChains(Suite, 56, 256, 255, 8, 14, 100);
  // ... and 53 influenced operators shaped like the running example
  // (fused_mul_sub_mul_tensoradd is itself a BERT operator).
  static const Int Sizes[] = {32, 32, 48};
  for (unsigned I = 0; I != 53; ++I) {
    Kernel K = makeFusedMulSubMulTensorAdd(Sizes[I % 3]);
    K.Name += "_" + std::to_string(I);
    Suite.Operators.push_back(std::move(K));
  }
  return Suite;
}

NetworkSuite makeLstm() {
  NetworkSuite Suite{"LSTM", "nlp", "ACLIMDB, GloVe", {}};
  // Four tiny, launch-bound operators; three are influenced.
  Suite.Operators.push_back(
      makeElementwiseChain("LSTM_gates", 64, 255, 2, 7));
  Suite.Operators.push_back(makeHostileOrderCopy("LSTM_perm0", 64, 64, 11));
  Suite.Operators.push_back(makeHostileOrderCopy("LSTM_perm1", 32, 128, 12));
  Suite.Operators.push_back(
      makeMiddlePermuted3D("LSTM_state", 8, 16, 64, 13));
  return Suite;
}

NetworkSuite makeMobileNetV2() {
  NetworkSuite Suite{"MobileNetv2", "cv", "ImageNet", {}};
  addPlainChains(Suite, 2, 128, 511, 1, 1, 300);
  // 16 influenced, near-neutral layout reorders.
  for (unsigned I = 0; I != 16; ++I)
    Suite.Operators.push_back(makeMiddlePermuted3D(
        "Mob_perm" + std::to_string(I), 16 + 8 * (I % 3), 28, 64, 310 + I));
  return Suite;
}

NetworkSuite makeResNet(const std::string &Name, const std::string &Dataset,
                        unsigned PlainCount, Int PlainRows, Int PlainCols,
                        unsigned HostileEven, unsigned HostileOdd, Int H,
                        Int W, unsigned SeedBase) {
  NetworkSuite Suite{Name, "cv", Dataset, {}};
  addPlainChains(Suite, PlainCount, PlainRows, PlainCols, 1, 1, SeedBase);
  // Layout-hostile permutes from fused transpose chains: influenced and
  // vectorizable when the extents are even.
  for (unsigned I = 0; I != HostileEven; ++I) {
    if (I % 2 == 0)
      Suite.Operators.push_back(makeHostileOrderCopy(
          Name + "_tr" + std::to_string(I), H, W, SeedBase + 50 + I));
    else
      Suite.Operators.push_back(makeHostileOrderPermute3D(
          Name + "_tr" + std::to_string(I), 32, H / 4, W / 2,
          SeedBase + 50 + I));
  }
  // Odd-width hostiles: influenced (reordered) but not vectorizable.
  for (unsigned I = 0; I != HostileOdd; ++I)
    Suite.Operators.push_back(makeHostileOrderCopy(
        Name + "_trodd" + std::to_string(I), H, W - 1, SeedBase + 90 + I));
  return Suite;
}

NetworkSuite makeResNeXt50() {
  NetworkSuite Suite{"ResNeXt50", "cv", "ImageNet", {}};
  addPlainChains(Suite, 11, 384, 767, 1, 1, 500);
  for (unsigned I = 0; I != 10; ++I)
    Suite.Operators.push_back(makeMiddlePermuted3D(
        "RX_perm" + std::to_string(I), 32, 28, 64, 510 + I));
  for (unsigned I = 0; I != 11; ++I)
    Suite.Operators.push_back(makeHostileOrderCopy(
        "RX_tr" + std::to_string(I), 256, 256, 530 + I));
  Suite.Operators.push_back(
      makeHostileOrderCopy("RX_trodd", 256, 255, 560));
  return Suite;
}

NetworkSuite makeVgg16() {
  NetworkSuite Suite{"VGG16", "cv", "CIFAR-10", {}};
  addPlainChains(Suite, 4, 1024, 2047, 1, 1, 600);
  for (unsigned I = 0; I != 9; ++I)
    Suite.Operators.push_back(makeHostileOrderCopy(
        "VGG_tr" + std::to_string(I), 256, 384, 610 + I));
  Suite.Operators.push_back(
      makeHostileOrderCopy("VGG_trodd", 256, 383, 630));
  return Suite;
}

} // namespace

NetworkSuite pinj::makeNetworkSuite(const std::string &Name) {
  if (Name == "bert")
    return makeBert();
  if (Name == "lstm")
    return makeLstm();
  if (Name == "mobilenetv2")
    return makeMobileNetV2();
  if (Name == "resnet50")
    return makeResNet("ResNet50", "CIFAR-10", 5, 1536, 2047, 10, 2,
                      768, 768, 400);
  if (Name == "resnet101")
    return makeResNet("ResNet101", "ImageNet", 6, 1024, 2047, 14, 2,
                      2048, 2048, 450);
  if (Name == "resnext50")
    return makeResNeXt50();
  if (Name == "vgg16")
    return makeVgg16();
  fatalError("unknown network name");
}

std::vector<std::string> pinj::allNetworkNames() {
  return {"bert",     "lstm",      "mobilenetv2", "resnet50",
          "resnet101", "resnext50", "vgg16"};
}
