//===- gpusim/GpuModel.cpp ------------------------------------------------===//

#include "gpusim/GpuModel.h"

using namespace pinj;

namespace {

/// NVIDIA Tesla P100 (PCIe): HBM2 at ~732 GB/s, lower issue throughput
/// and a slightly higher launch cost than V100; narrow accesses pay a
/// little more.
GpuModel p100Model() {
  GpuModel M;
  M.PeakBandwidthGBs = 732.0;
  M.IssueRateGops = 3000.0;
  M.LaunchOverheadUs = 5.0;
  M.OutstandingRequestsPerWarp = 5.0;
  M.HalfSaturationBytes = 80.0 * 1024.0;
  M.NarrowAccessEfficiency = 0.8;
  return M;
}

/// NVIDIA A100 (SXM): HBM2e at ~1555 GB/s, more outstanding requests
/// per warp (larger latency-hiding window), cheaper launches, and a
/// narrower gap between scalar and 128-bit access efficiency.
GpuModel a100Model() {
  GpuModel M;
  M.PeakBandwidthGBs = 1555.0;
  M.IssueRateGops = 6900.0;
  M.LaunchOverheadUs = 3.0;
  M.OutstandingRequestsPerWarp = 8.0;
  M.HalfSaturationBytes = 160.0 * 1024.0;
  M.NarrowAccessEfficiency = 0.88;
  return M;
}

} // namespace

std::optional<GpuModel> pinj::gpuModelPreset(const std::string &Name) {
  if (Name == "v100")
    return GpuModel(); // The default model approximates a V100 (PCIe).
  if (Name == "a100")
    return a100Model();
  if (Name == "p100")
    return p100Model();
  return std::nullopt;
}

std::vector<std::string> pinj::gpuModelPresetNames() {
  return {"v100", "a100", "p100"};
}
