//===- gpusim/GpuModel.h - Analytic GPU performance model -------*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stand-in for the paper's Tesla V100 + nvprof measurements: a
/// warp-level memory-transaction model. Lanes of a warp issue loads and
/// stores; addresses are grouped into 32-byte sectors (coalescing);
/// explicit vector types turn four scalar accesses into one 64/128-bit
/// lane access. Kernel time is the maximum of an analytic bandwidth term
/// (transactions x sector size / effective bandwidth) and an instruction
/// issue term, plus a launch overhead — the regime the paper's
/// bandwidth-bound fused operators live in.
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_GPUSIM_GPUMODEL_H
#define POLYINJECT_GPUSIM_GPUMODEL_H

#include "codegen/Mapping.h"

#include <optional>
#include <string>
#include <vector>

namespace pinj {

/// Machine parameters; defaults approximate a Tesla V100 (PCIe).
struct GpuModel {
  unsigned WarpSize = 32;
  unsigned SectorBytes = 32;
  double PeakBandwidthGBs = 900.0;  ///< HBM2.
  double IssueRateGops = 4000.0;    ///< Scalar instruction issue, whole GPU.
  double LaunchOverheadUs = 4.0;    ///< Per kernel launch.
  /// Memory requests a warp keeps in flight (latency hiding).
  double OutstandingRequestsPerWarp = 6.0;
  /// Bytes in flight at which half the peak bandwidth is reached
  /// (~bandwidth x latency scale); the saturation curve is x / (1 + x).
  double HalfSaturationBytes = 96.0 * 1024.0;
  /// Bandwidth efficiency floor for tiny launches.
  double MinEfficiency = 0.02;
  /// DRAM/issue efficiency of narrow accesses relative to 128-bit ones:
  /// a scalar-float kernel reaches NarrowAccessEfficiency of the
  /// bandwidth a float4 kernel reaches (measured ~0.85-0.9 on V100).
  double NarrowAccessEfficiency = 0.85;

  /// Effective bandwidth fraction for a kernel keeping \p Warps warps
  /// resident with \p BytesPerRequest bytes per warp-level request and
  /// an average per-lane access size of \p BytesPerLane.
  double bandwidthEfficiency(double Warps, double BytesPerRequest,
                             double BytesPerLane) const {
    double InFlight = Warps * OutstandingRequestsPerWarp * BytesPerRequest;
    double X =
        HalfSaturationBytes > 0 ? InFlight / HalfSaturationBytes : 1.0;
    double Fraction = X / (1.0 + X);
    // Wide (64/128-bit) lane accesses use DRAM bursts and the LSU
    // pipeline better; interpolate between narrow and full efficiency.
    double LaneScale = BytesPerLane >= 16.0 ? 1.0 : BytesPerLane / 16.0;
    Fraction *=
        NarrowAccessEfficiency + (1.0 - NarrowAccessEfficiency) * LaneScale;
    return Fraction < MinEfficiency ? MinEfficiency : Fraction;
  }
};

/// Simulation result for one kernel launch.
struct KernelSim {
  double TimeUs = 0;
  double MemTimeUs = 0;
  double ComputeTimeUs = 0;
  double Transactions = 0;     ///< 32B sector transactions.
  double TransactionBytes = 0; ///< Transactions x SectorBytes.
  double UsefulBytes = 0;      ///< Bytes the program actually touches.
  double MemInstructions = 0;  ///< Load/store instructions issued.
  double ComputeInstructions = 0;
  double Warps = 0;

  /// Fraction of transferred bytes the program uses (coalescing
  /// quality).
  double efficiency() const {
    return TransactionBytes > 0 ? UsefulBytes / TransactionBytes : 1.0;
  }
};

/// The machine model for a named preset ("v100" is the default-constructed
/// model; "a100" and "p100" rescale bandwidth/issue/latency-hiding), or
/// nothing for an unknown name. Every preset field participates in the
/// options fingerprint (service/Fingerprint.h), so cache and tuning-db
/// keys distinguish targets.
std::optional<GpuModel> gpuModelPreset(const std::string &Name);

/// Every name gpuModelPreset accepts, in a stable order (for --gpu=
/// diagnostics).
std::vector<std::string> gpuModelPresetNames();

/// The transaction-model half of a backend target (see src/target/): how
/// many lanes issue memory accesses together, the machine's transaction
/// granularity, and how one lane group's accesses coalesce into
/// transactions. The lane walk in WarpSimulator.cpp is generic over this
/// interface; the GPU plugs in 32-lane warps over 32-byte sectors, the
/// CPU-SIMD target 16-lane vectors over 64-byte cache lines.
class TransactionModel {
public:
  virtual ~TransactionModel() = default;
  /// Lanes that issue one memory request together (warp size / SIMD
  /// width). Also the granularity of the per-thread work decomposition.
  virtual unsigned laneCount() const = 0;
  /// Bytes moved per transaction (sector / cache line).
  virtual unsigned transactionBytes() const = 0;
  /// Transactions needed to serve one lane group's accesses
  /// ((byte address, size) pairs).
  virtual double
  transactionsFor(const std::vector<std::pair<Int, unsigned>> &Accesses)
      const = 0;
};

/// Distinct-aligned-blocks coalescing: the transaction count is the
/// number of distinct TransactionBytes-aligned blocks the group touches
/// (GPU sectors and CPU cache lines both behave this way; they differ in
/// lane count and granularity).
class SectorTransactionModel : public TransactionModel {
public:
  SectorTransactionModel(unsigned Lanes, unsigned Bytes)
      : Lanes(Lanes), Bytes(Bytes) {}
  unsigned laneCount() const override { return Lanes; }
  unsigned transactionBytes() const override { return Bytes; }
  double transactionsFor(const std::vector<std::pair<Int, unsigned>>
                             &Accesses) const override;

private:
  unsigned Lanes;
  unsigned Bytes;
};

/// Walks every statement of \p M and accumulates the transaction-model
/// counters: Transactions, TransactionBytes, UsefulBytes,
/// MemInstructions, ComputeInstructions and Warps. The time fields are
/// left zero — a time model (finishGpuTime, or a target's finishTime)
/// turns counters into microseconds. Counters are independent of every
/// time-model constant, which is what makes calibration cheap: the
/// calibrator accumulates each table row once and re-applies candidate
/// time parameters to the fixed counters.
KernelSim accumulateTransactions(const MappedKernel &M,
                                 const TransactionModel &Tx);

/// The GPU analytic time model applied to accumulated counters:
/// bandwidth-saturation efficiency from warps in flight, memory vs
/// compute overlap (max), plus launch overhead.
KernelSim finishGpuTime(KernelSim Counters, const GpuModel &Model);

/// Simulates one mapped kernel on \p Model. Exactly
/// finishGpuTime(accumulateTransactions(M, <WarpSize/SectorBytes>), Model)
/// plus the gpusim trace span and metrics.
KernelSim simulateKernel(const MappedKernel &M, const GpuModel &Model);

/// Counts the 32-byte sectors touched by a set of per-lane byte accesses
/// (address, size). Exposed for unit testing the coalescing rules.
unsigned countSectors(const std::vector<std::pair<Int, unsigned>> &Accesses,
                      unsigned SectorBytes = 32);

} // namespace pinj

#endif // POLYINJECT_GPUSIM_GPUMODEL_H
