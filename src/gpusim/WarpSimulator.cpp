//===- gpusim/WarpSimulator.cpp -------------------------------------------===//

#include "gpusim/GpuModel.h"

#include "influence/AccessAnalysis.h"
#include "obs/Metrics.h"
#include "support/FailPoint.h"
#include "obs/Trace.h"

#include <algorithm>
#include <cmath>
#include <set>

using namespace pinj;

unsigned pinj::countSectors(
    const std::vector<std::pair<Int, unsigned>> &Accesses,
    unsigned SectorBytes) {
  std::set<Int> Sectors;
  for (const auto &[Addr, Size] : Accesses) {
    Int First = floorDiv(Addr, SectorBytes);
    Int Last = floorDiv(Addr + static_cast<Int>(Size) - 1, SectorBytes);
    for (Int S = First; S <= Last; ++S)
      Sectors.insert(S);
  }
  return Sectors.size();
}

double pinj::SectorTransactionModel::transactionsFor(
    const std::vector<std::pair<Int, unsigned>> &Accesses) const {
  return countSectors(Accesses, Bytes);
}

namespace {

/// Lane access shape of one tensor access inside (or outside) a vector
/// loop.
enum class LaneAccessKind {
  Scalar,    ///< One 4-byte access per instance.
  Vector,    ///< One Width*4-byte access per vector step.
  Broadcast, ///< Constant in the vector iterator: one scalar access.
  Replay     ///< Strided in the vector iterator: Width scalar accesses.
};

/// Per-statement simulation state. Generic over the transaction model:
/// the walk itself only needs the lane-group size and the coalescing
/// rule, so the GPU warp/sector and CPU vector/cache-line targets share
/// it (and share its arithmetic exactly — the GPU path must stay
/// bit-identical to the pre-target-subsystem simulator).
class StmtSimulator {
public:
  StmtSimulator(const MappedKernel &M, const TransactionModel &Tx,
                unsigned Stmt)
      : M(M), K(*M.K), Tx(Tx), LaneCount(Tx.laneCount()), StmtId(Stmt),
        S(K.Stmts[Stmt]), Strides(analyzeStrides(K, S)) {
    // Stride of each access along each *schedule dimension*.
    unsigned ND = M.Dims.size();
    DimStride.assign(Strides.size(), std::vector<Int>(ND, 0));
    for (unsigned A = 0; A != Strides.size(); ++A)
      for (unsigned I = 0, NI = S.numIters(); I != NI; ++I)
        if (M.IterDim[StmtId][I] >= 0)
          DimStride[A][M.IterDim[StmtId][I]] = Strides[A].StridePerIter[I];

    // Per-dimension extent for this statement (1 when unbound).
    StmtExtent.assign(ND, 1);
    for (unsigned I = 0, NI = S.numIters(); I != NI; ++I)
      if (M.IterDim[StmtId][I] >= 0)
        StmtExtent[M.IterDim[StmtId][I]] = S.Extents[I];

    VectorDim = -1;
    VectorWidth = 0;
    for (unsigned D = 0; D != ND; ++D) {
      if (M.Dims[D].Role == DimRole::Vector && StmtExtent[D] > 1 &&
          M.Sched.Dims[D].isVectorFor(StmtId)) {
        VectorDim = static_cast<int>(D);
        VectorWidth = M.Dims[D].VectorWidth;
      }
    }
    assert((VectorDim >= 0 || VectorWidth == 0) && "width without dim");
  }

  /// Accumulates this statement's contribution into the totals.
  void accumulate(KernelSim &Sim) {
    unsigned ElemBytes = 4;

    // Thread-dim decomposition of the block's lanes, innermost fastest.
    // Vector dims participate as lane groups: coordinate scale is the
    // vector width (each lane covers Width consecutive iterations).
    std::vector<ThreadDim> ThreadDims;
    for (unsigned D = M.Dims.size(); D-- > 0;) {
      if (M.Dims[D].Role == DimRole::Thread)
        ThreadDims.push_back({D, M.Dims[D].ThreadCount, 1});
      else if (M.Dims[D].Role == DimRole::Vector)
        ThreadDims.push_back(
            {D, M.Dims[D].ThreadCount,
             static_cast<Int>(M.Dims[D].VectorWidth)});
    }
    Int ThreadsPerBlock = 1;
    for (const ThreadDim &T : ThreadDims)
      ThreadsPerBlock = checkedMul(ThreadsPerBlock, T.Count);
    Int WarpsPerBlock =
        std::max<Int>(1, ceilDiv(ThreadsPerBlock, LaneCount));
    Int TotalBlocks = M.numBlocks();
    double TotalWarps =
        static_cast<double>(WarpsPerBlock) * static_cast<double>(TotalBlocks);

    // Per-thread sequential work of this statement: sequential dims plus
    // any leftover of vector dims the lanes and blocks do not cover.
    double StepsPerThread = 1;
    for (unsigned D = 0, ND = M.Dims.size(); D != ND; ++D) {
      const DimMapping &Dim = M.Dims[D];
      if (Dim.Role == DimRole::Seq) {
        StepsPerThread *= static_cast<double>(StmtExtent[D]);
      } else if ((Dim.Role == DimRole::Vector ||
                  Dim.Role == DimRole::Thread) &&
                 StmtExtent[D] > 1) {
        // Lane groups not covered by threads and block splits loop
        // inside each thread (sync-parallel dims keep BlockFactor 1).
        Int Groups = Dim.Role == DimRole::Vector
                         ? ceilDiv(StmtExtent[D], Dim.VectorWidth)
                         : StmtExtent[D];
        Int Covered = checkedMul(Dim.ThreadCount, Dim.BlockFactor);
        StepsPerThread *=
            static_cast<double>(std::max<Int>(1, ceilDiv(Groups, Covered)));
      }
    }

    // Sample a handful of warps of block 0 at two sequential positions.
    const unsigned MaxSampleWarps = 16;
    unsigned SampleCount =
        std::min<unsigned>(MaxSampleWarps, static_cast<unsigned>(
                                               std::min<Int>(WarpsPerBlock,
                                                             1 << 20)));
    double WarpStride =
        static_cast<double>(WarpsPerBlock) / std::max(1u, SampleCount);

    double SumTransactions = 0, SumInstructions = 0, SumActive = 0;
    unsigned Samples = 0;
    for (unsigned WS = 0; WS != SampleCount; ++WS) {
      Int Warp = static_cast<Int>(WS * WarpStride);
      for (Int SeqPos : {Int(0), Int(1)}) {
        double Tx = 0, Instr = 0, Active = 0;
        simulateWarp(Warp, SeqPos, ThreadDims, ElemBytes, Tx, Instr,
                     Active);
        SumTransactions += Tx;
        SumInstructions += Instr;
        SumActive += Active;
        ++Samples;
      }
    }
    static obs::Counter &WarpSamples =
        obs::metrics().counter("gpusim.warps_simulated");
    WarpSamples.add(Samples);
    if (Samples == 0)
      return;
    double AvgTx = SumTransactions / Samples;
    double AvgInstr = SumInstructions / Samples;
    double AvgActive = SumActive / Samples;

    double WarpSteps = TotalWarps * StepsPerThread;
    Sim.Transactions += AvgTx * WarpSteps;
    Sim.TransactionBytes += AvgTx * WarpSteps * Tx.transactionBytes();
    Sim.MemInstructions += AvgInstr * WarpSteps;
    Sim.ComputeInstructions += AvgActive * WarpSteps;
    double Instances = 1;
    for (Int E : S.Extents)
      Instances *= static_cast<double>(E);
    Sim.UsefulBytes += Instances * ElemBytes * (1 + S.Reads.size());
    Sim.Warps = std::max(Sim.Warps, TotalWarps);
  }

private:
  LaneAccessKind accessKind(unsigned A) const {
    if (VectorDim < 0)
      return LaneAccessKind::Scalar;
    Int Stride = DimStride[A][VectorDim];
    if (Stride == 0)
      return LaneAccessKind::Broadcast;
    if (Stride == 1 &&
        isVectorizableAccess(Strides[A],
                             boundIterOf(static_cast<unsigned>(VectorDim)),
                             VectorWidth))
      return LaneAccessKind::Vector;
    return LaneAccessKind::Replay;
  }

  unsigned boundIterOf(unsigned Dim) const {
    for (unsigned I = 0, NI = S.numIters(); I != NI; ++I)
      if (M.IterDim[StmtId][I] == static_cast<int>(Dim))
        return I;
    return 0;
  }

  struct ThreadDim {
    unsigned Dim;
    Int Count;
    Int Scale; ///< Iterator units per lane step (vector width or 1).
  };

  void simulateWarp(Int Warp, Int SeqPos,
                    const std::vector<ThreadDim> &ThreadDims,
                    unsigned ElemBytes, double &TxCount, double &Instr,
                    double &Active) {
    // Base element offset from sequential dims at the sampled position.
    std::vector<Int> BaseCoord(M.Dims.size(), 0);
    for (unsigned D = 0, ND = M.Dims.size(); D != ND; ++D)
      if (M.Dims[D].Role == DimRole::Seq)
        BaseCoord[D] = std::min<Int>(SeqPos, StmtExtent[D] - 1);

    for (unsigned A = 0, NA = Strides.size(); A != NA; ++A) {
      LaneAccessKind Kind = accessKind(A);
      std::vector<std::pair<Int, unsigned>> LaneAccesses;
      unsigned ActiveLanes = 0;
      for (unsigned Lane = 0; Lane != LaneCount; ++Lane) {
        Int Linear = Warp * LaneCount + Lane;
        // Decompose into thread-dim coordinates, innermost fastest.
        bool LaneActive = true;
        Int Remainder = Linear;
        std::vector<Int> Coord = BaseCoord;
        for (const ThreadDim &T : ThreadDims) {
          Int C = (Remainder % T.Count) * T.Scale;
          Remainder /= T.Count;
          // Statements unbound at this dim (extent 1) execute only at
          // coordinate 0; bound ones only within their extent.
          if (C >= StmtExtent[T.Dim]) {
            LaneActive = false;
            break;
          }
          Coord[T.Dim] = C;
        }
        if (Remainder != 0)
          LaneActive = false; // Beyond the block's thread space.
        if (!LaneActive)
          continue;
        ++ActiveLanes;
        Int Elem = Strides[A].ConstOffset;
        for (unsigned D = 0, ND = M.Dims.size(); D != ND; ++D)
          Elem += DimStride[A][D] * Coord[D];
        Int Addr = Elem * ElemBytes;
        switch (Kind) {
        case LaneAccessKind::Scalar:
        case LaneAccessKind::Broadcast:
          LaneAccesses.emplace_back(Addr, ElemBytes);
          Instr += 1;
          break;
        case LaneAccessKind::Vector:
          LaneAccesses.emplace_back(Addr, ElemBytes * VectorWidth);
          Instr += 1;
          break;
        case LaneAccessKind::Replay: {
          Int Stride = DimStride[A][VectorDim];
          for (unsigned E = 0; E != VectorWidth; ++E)
            LaneAccesses.emplace_back(Addr + Stride * ElemBytes * E,
                                      ElemBytes);
          Instr += VectorWidth;
          break;
        }
        }
      }
      TxCount += Tx.transactionsFor(LaneAccesses);
      if (A == 0)
        Active += ActiveLanes; // Count statement instances once.
    }
  }

  const MappedKernel &M;
  const Kernel &K;
  const TransactionModel &Tx;
  unsigned LaneCount;
  unsigned StmtId;
  const Statement &S;
  std::vector<AccessStrides> Strides;
  std::vector<std::vector<Int>> DimStride;
  std::vector<Int> StmtExtent;
  int VectorDim = -1;
  unsigned VectorWidth = 0;
};

} // namespace

KernelSim pinj::accumulateTransactions(const MappedKernel &M,
                                       const TransactionModel &Tx) {
  KernelSim Sim;
  for (unsigned Stmt = 0, E = M.K->Stmts.size(); Stmt != E; ++Stmt) {
    StmtSimulator StmtSim(M, Tx, Stmt);
    StmtSim.accumulate(Sim);
  }
  return Sim;
}

KernelSim pinj::finishGpuTime(KernelSim Sim, const GpuModel &Model) {
  // Analytic time model. Bandwidth saturation depends on the bytes the
  // kernel keeps in flight: a float4 kernel with 4x fewer warps moves
  // the same bytes per request wave as its scalar counterpart.
  double WarpRequests =
      Sim.MemInstructions / std::max(1.0, double(Model.WarpSize));
  double BytesPerRequest =
      WarpRequests > 0 ? Sim.TransactionBytes / WarpRequests : 0.0;
  double BytesPerLane = Sim.MemInstructions > 0
                            ? Sim.UsefulBytes / Sim.MemInstructions
                            : 4.0;
  double Efficiency =
      Model.bandwidthEfficiency(Sim.Warps, BytesPerRequest, BytesPerLane);
  double EffBandwidth = Model.PeakBandwidthGBs * Efficiency; // GB/s
  Sim.MemTimeUs =
      Sim.TransactionBytes / (EffBandwidth * 1e9) * 1e6; // bytes -> us
  Sim.ComputeTimeUs =
      (Sim.MemInstructions + Sim.ComputeInstructions) /
      (Model.IssueRateGops * 1e9) * 1e6;
  Sim.TimeUs =
      Model.LaunchOverheadUs + std::max(Sim.MemTimeUs, Sim.ComputeTimeUs);
  return Sim;
}

KernelSim pinj::simulateKernel(const MappedKernel &M, const GpuModel &Model) {
  obs::Span Sp("gpusim.simulate");
  failpoint::hit("gpusim.simulate");
  SectorTransactionModel Tx(Model.WarpSize, Model.SectorBytes);
  KernelSim Sim = finishGpuTime(accumulateTransactions(M, Tx), Model);

  static obs::Counter &Kernels =
      obs::metrics().counter("gpusim.kernels_simulated");
  static obs::Counter &Transactions =
      obs::metrics().counter("gpusim.transactions");
  static obs::Histogram &TxPerKernel =
      obs::metrics().histogram("gpusim.transactions_per_kernel");
  Kernels.inc();
  Transactions.add(
      static_cast<std::uint64_t>(std::llround(std::max(0.0, Sim.Transactions))));
  TxPerKernel.observe(Sim.Transactions);
  if (Sp.active())
    Sp.arg("kernel", M.K->Name)
        .arg("transactions", Sim.Transactions)
        .arg("warps", Sim.Warps)
        .arg("time_us", Sim.TimeUs);
  return Sim;
}
