//===- target/CpuSimdTarget.cpp -------------------------------------------===//

#include "target/CpuSimdTarget.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <algorithm>
#include <cmath>

using namespace pinj;
using namespace pinj::target;

KernelSim CpuSimdTarget::accumulateCounters(const MappedKernel &Mk) const {
  // Cache-line transaction model: groups of SimdLanes vector lanes,
  // coalescing measured as distinct 64-byte lines touched.
  SectorTransactionModel Tx(M.SimdLanes, M.CacheLineBytes);
  return accumulateTransactions(Mk, Tx);
}

KernelSim CpuSimdTarget::finishTime(KernelSim Sim) const {
  // Bandwidth term: the prefetchers ramp up over the streamed bytes
  // (x/(1+x) in TransactionBytes), scaled down for narrow lane
  // accesses that cannot keep the line-fill buffers busy.
  double BytesPerLane = Sim.MemInstructions > 0
                            ? Sim.UsefulBytes / Sim.MemInstructions
                            : 4.0;
  double X = M.HalfSaturationBytes > 0
                 ? Sim.TransactionBytes / M.HalfSaturationBytes
                 : 1.0;
  double Fraction = X / (1.0 + X);
  double LaneScale = BytesPerLane >= 16.0 ? 1.0 : BytesPerLane / 16.0;
  Fraction *=
      M.NarrowAccessEfficiency + (1.0 - M.NarrowAccessEfficiency) * LaneScale;
  double Efficiency = std::max(M.MinEfficiency, Fraction);
  Sim.MemTimeUs =
      Sim.TransactionBytes / (M.PeakBandwidthGBs * Efficiency * 1e9) * 1e6;
  Sim.ComputeTimeUs = (Sim.MemInstructions + Sim.ComputeInstructions) /
                      (M.IssueRateGops * 1e9) * 1e6;
  // A handful of cores overlaps memory and compute far less than a
  // GPU: the terms add instead of taking the max.
  Sim.TimeUs = M.LaunchOverheadUs + Sim.MemTimeUs + Sim.ComputeTimeUs;
  return Sim;
}

KernelSim CpuSimdTarget::simulate(const MappedKernel &Mk) const {
  obs::Span Sp("target.cpu_simd.simulate");
  KernelSim Sim = finishTime(accumulateCounters(Mk));
  static obs::Counter &Kernels =
      obs::metrics().counter("target.cpu_kernels_simulated");
  Kernels.inc();
  if (Sp.active())
    Sp.arg("kernel", Mk.K->Name)
        .arg("transactions", Sim.Transactions)
        .arg("time_us", Sim.TimeUs);
  return Sim;
}

std::vector<TargetParam> CpuSimdTarget::params() const {
  return {
      {"SimdLanes", static_cast<double>(M.SimdLanes)},
      {"CacheLineBytes", static_cast<double>(M.CacheLineBytes)},
      {"PeakBandwidthGBs", M.PeakBandwidthGBs},
      {"IssueRateGops", M.IssueRateGops},
      {"LaunchOverheadUs", M.LaunchOverheadUs},
      {"HalfSaturationBytes", M.HalfSaturationBytes},
      {"MinEfficiency", M.MinEfficiency},
      {"NarrowAccessEfficiency", M.NarrowAccessEfficiency},
  };
}

bool CpuSimdTarget::setParam(const std::string &Name, double Value) {
  auto [Lo, Hi] = paramRange(Name);
  if (!(Value >= Lo && Value <= Hi) || !std::isfinite(Value))
    return false;
  if (Name == "SimdLanes")
    M.SimdLanes = static_cast<unsigned>(Value);
  else if (Name == "CacheLineBytes")
    M.CacheLineBytes = static_cast<unsigned>(Value);
  else if (Name == "PeakBandwidthGBs")
    M.PeakBandwidthGBs = Value;
  else if (Name == "IssueRateGops")
    M.IssueRateGops = Value;
  else if (Name == "LaunchOverheadUs")
    M.LaunchOverheadUs = Value;
  else if (Name == "HalfSaturationBytes")
    M.HalfSaturationBytes = Value;
  else if (Name == "MinEfficiency")
    M.MinEfficiency = Value;
  else if (Name == "NarrowAccessEfficiency")
    M.NarrowAccessEfficiency = Value;
  else
    return false;
  return true;
}

std::pair<double, double>
CpuSimdTarget::paramRange(const std::string &Name) const {
  if (Name == "MinEfficiency" || Name == "NarrowAccessEfficiency")
    return {0.001, 1.0};
  if (Name == "SimdLanes" || Name == "CacheLineBytes")
    return {1.0, 4096.0};
  return TargetModel::paramRange(Name);
}

std::shared_ptr<TargetModel> CpuSimdTarget::clone() const {
  auto Copy = std::make_shared<CpuSimdTarget>(M);
  Copy->rename(name());
  return Copy;
}
