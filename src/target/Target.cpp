//===- target/Target.cpp - Registry, .ptgt files, options glue ------------===//

#include "target/Target.h"

#include "obs/Metrics.h"
#include "pipeline/Pipeline.h"
#include "target/CpuSimdTarget.h"
#include "target/GpuAnalyticTarget.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

using namespace pinj;
using namespace pinj::target;

namespace fs = std::filesystem;

std::pair<double, double>
TargetModel::paramRange(const std::string &) const {
  return {1e-6, 1e12};
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

std::vector<std::string> target::builtinTargetNames() {
  std::vector<std::string> Names = gpuModelPresetNames();
  Names.push_back(CpuSimdKind);
  return Names;
}

std::shared_ptr<TargetModel> target::makeBuiltinTarget(const std::string &N) {
  if (std::optional<GpuModel> Preset = gpuModelPreset(N)) {
    auto T = std::make_shared<GpuAnalyticTarget>(*Preset);
    T->rename(N);
    return T;
  }
  if (N == CpuSimdKind) {
    auto T = std::make_shared<CpuSimdTarget>();
    T->rename(N);
    return T;
  }
  return nullptr;
}

std::shared_ptr<TargetModel> target::makeTargetOfKind(const std::string &K) {
  if (K == GpuAnalyticKind)
    return std::make_shared<GpuAnalyticTarget>();
  if (K == CpuSimdKind)
    return std::make_shared<CpuSimdTarget>();
  return nullptr;
}

std::string target::availableTargetsHint() {
  std::string Out;
  for (const std::string &N : builtinTargetNames())
    Out += N + ", ";
  Out += "or a .ptgt file path";
  return Out;
}

std::shared_ptr<TargetModel> target::resolveTarget(const std::string &Spec,
                                                   std::string *Err) {
  if (auto T = makeBuiltinTarget(Spec))
    return T;
  // Not a built-in name: accept an existing .ptgt file path.
  std::error_code Ec;
  if (fs::exists(Spec, Ec))
    return loadTargetFile(Spec, Err);
  if (Err)
    *Err = "unknown target '" + Spec +
           "' (available: " + availableTargetsHint() + ")";
  return nullptr;
}

//===----------------------------------------------------------------------===//
// .ptgt files
//===----------------------------------------------------------------------===//

namespace {

// On-disk format (text, one file):
//
//   polyinject-target v1
//   kind <gpu-analytic|cpu-simd>
//   name <token>
//   params <N>
//   param <Name> <value %.17g>
//   ...
//   end
//
// Parsing is strict and all-or-nothing, the model/Dataset.cpp policy: a
// target with silently defaulted constants would score every kernel
// wrong, which is worse than forcing a re-calibration. N must equal the
// kind's full parameter count — a file written under an older or newer
// parameter set is stale and refused.

constexpr const char *FileHeader = "polyinject-target v1";

obs::Counter &rejectCounter() {
  static obs::Counter &C = obs::metrics().counter("target.rejects");
  return C;
}

std::shared_ptr<TargetModel> reject(std::string *Err,
                                    const std::string &Msg) {
  rejectCounter().inc();
  if (Err)
    *Err = Msg;
  return nullptr;
}

bool failSave(std::string *Err, const std::string &Msg) {
  if (Err)
    *Err = Msg;
  return false;
}

std::string sanitizeToken(const std::string &S) {
  std::string Out = S.empty() ? "_" : S;
  for (char &C : Out)
    if (std::isspace(static_cast<unsigned char>(C)))
      C = '_';
  return Out;
}

bool parseDoubleTok(const std::string &Tok, double &Out) {
  char *End = nullptr;
  Out = std::strtod(Tok.c_str(), &End);
  return End != Tok.c_str() && *End == '\0' && std::isfinite(Out);
}

} // namespace

std::string target::serializeTarget(const TargetModel &T) {
  std::ostringstream Out;
  char Buf[64];
  Out << FileHeader << '\n';
  Out << "kind " << T.kind() << '\n';
  Out << "name " << sanitizeToken(T.name()) << '\n';
  std::vector<TargetParam> Params = T.params();
  Out << "params " << Params.size() << '\n';
  for (const TargetParam &P : Params) {
    std::snprintf(Buf, sizeof(Buf), "%.17g", P.Value);
    Out << "param " << P.Name << ' ' << Buf << '\n';
  }
  Out << "end\n";
  return Out.str();
}

std::shared_ptr<TargetModel> target::parseTarget(const std::string &Text,
                                                 std::string *Err) {
  std::istringstream In(Text);
  std::string Line;

  if (!std::getline(In, Line) || Line != FileHeader)
    return reject(Err, "not a polyinject target file (bad header)");

  auto TokLine = [&](const char *Tag, std::string &Dst) {
    if (!std::getline(In, Line))
      return false;
    std::istringstream F(Line);
    std::string T, Extra;
    if (!(F >> T >> Dst) || T != Tag || (F >> Extra))
      return false;
    return true;
  };

  std::string Kind;
  if (!TokLine("kind", Kind))
    return reject(Err, "malformed kind line");
  std::shared_ptr<TargetModel> T = makeTargetOfKind(Kind);
  if (!T)
    return reject(Err, "unknown target kind '" + Kind + "'");

  std::string Name;
  if (!TokLine("name", Name))
    return reject(Err, "malformed name line");
  T->rename(Name);

  std::size_t Count = 0;
  if (!std::getline(In, Line))
    return reject(Err, "truncated target file (no params line)");
  {
    std::istringstream F(Line);
    std::string Tag;
    if (!(F >> Tag >> Count) || Tag != "params")
      return reject(Err, "malformed params line");
  }
  std::size_t Expected = T->params().size();
  if (Count != Expected)
    return reject(Err, "stale target file: " + Kind + " has " +
                           std::to_string(Expected) + " parameters, file "
                           "lists " + std::to_string(Count));

  std::vector<std::string> Seen;
  bool SawEnd = false;
  while (std::getline(In, Line)) {
    if (Line == "end") {
      SawEnd = true;
      break;
    }
    std::istringstream F(Line);
    std::string Tag, PName, VTok, Extra;
    double V;
    if (!(F >> Tag >> PName >> VTok) || Tag != "param" || (F >> Extra) ||
        !parseDoubleTok(VTok, V))
      return reject(Err, "malformed param line: " + Line);
    if (std::find(Seen.begin(), Seen.end(), PName) != Seen.end())
      return reject(Err, "duplicate parameter '" + PName + "'");
    if (!T->setParam(PName, V))
      return reject(Err, "unknown or out-of-range parameter '" + PName +
                             "' = " + VTok);
    Seen.push_back(PName);
  }
  if (!SawEnd)
    return reject(Err, "truncated target file (no end marker)");
  if (Seen.size() != Count)
    return reject(Err, "parameter count mismatch (params line says " +
                           std::to_string(Count) + ", file has " +
                           std::to_string(Seen.size()) + ")");
  return T;
}

bool target::saveTargetFile(const TargetModel &T, const std::string &Path,
                            std::string *Err) {
  std::ostringstream TmpName;
  TmpName << Path << ".tmp." << std::this_thread::get_id();
  std::string Tmp = TmpName.str();
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return failSave(Err, "cannot open " + Tmp + " for writing");
    Out << serializeTarget(T);
    Out.close();
    if (!Out) {
      std::error_code Ec;
      fs::remove(Tmp, Ec);
      return failSave(Err, "write to " + Tmp + " failed");
    }
  }
  std::error_code Ec;
  fs::rename(Tmp, Path, Ec);
  if (Ec) {
    fs::remove(Tmp, Ec);
    return failSave(Err, "rename to " + Path + " failed: " + Ec.message());
  }
  return true;
}

std::shared_ptr<TargetModel> target::loadTargetFile(const std::string &Path,
                                                    std::string *Err) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return reject(Err, "cannot open target file " + Path);
  std::ostringstream Text;
  Text << In.rdbuf();
  std::shared_ptr<TargetModel> T = parseTarget(Text.str(), Err);
  if (T && T->name() == "_")
    T->rename(fs::path(Path).stem().string());
  return T;
}

//===----------------------------------------------------------------------===//
// Options integration
//===----------------------------------------------------------------------===//

KernelSim target::simulateForOptions(const MappedKernel &M,
                                     const PipelineOptions &O) {
  return O.Target ? O.Target->simulate(M) : simulateKernel(M, O.Gpu);
}

std::string target::targetIdForOptions(const PipelineOptions &O) {
  // FNV-1a over kind + ordered constants (bit patterns); the display
  // name is deliberately absent — identity is what the target computes.
  std::uint64_t H = 0xcbf29ce484222325ull;
  auto Byte = [&H](std::uint8_t B) { H = (H ^ B) * 0x100000001b3ull; };
  auto Str = [&](const std::string &S) {
    for (char C : S)
      Byte(static_cast<std::uint8_t>(C));
    Byte(0);
  };
  std::string Kind =
      O.Target ? O.Target->kind() : std::string(GpuAnalyticKind);
  std::vector<TargetParam> Params =
      O.Target ? O.Target->params() : gpuAnalyticParams(O.Gpu);
  Str(Kind);
  for (const TargetParam &P : Params) {
    Str(P.Name);
    std::uint64_t Bits;
    static_assert(sizeof(Bits) == sizeof(P.Value), "double must be 64-bit");
    std::memcpy(&Bits, &P.Value, sizeof(Bits));
    for (unsigned I = 0; I != 8; ++I)
      Byte(static_cast<std::uint8_t>(Bits >> (8 * I)));
  }
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%s-%016llx", Kind.c_str(),
                static_cast<unsigned long long>(H));
  return Buf;
}
