//===- target/Calibrate.cpp -----------------------------------------------===//

#include "target/Calibrate.h"

#include "target/CpuSimdTarget.h"
#include "target/GpuAnalyticTarget.h"

#include <algorithm>
#include <cmath>

using namespace pinj;
using namespace pinj::target;

namespace {

/// Mean squared log-time error of T's current constants over the rows.
double objective(const TargetModel &T,
                 const std::vector<CalibrationSample> &Rows) {
  double Sum = 0;
  std::size_t N = 0;
  for (const CalibrationSample &R : Rows) {
    if (!(R.MeasuredUs > 0))
      continue;
    double Pred = std::max(1e-9, T.finishTime(R.Counters).TimeUs);
    double E = std::log(Pred) - std::log(R.MeasuredUs);
    Sum += E * E;
    ++N;
  }
  return N ? Sum / static_cast<double>(N) : 0.0;
}

/// Sets \p Name to \p V and returns the objective (V is always inside
/// the parameter's range by construction of the bracket).
double probe(TargetModel &T, const std::string &Name, double V,
             const std::vector<CalibrationSample> &Rows) {
  T.setParam(Name, V);
  return objective(T, Rows);
}

} // namespace

std::vector<std::string> target::defaultFitParams(const std::string &Kind) {
  if (Kind == CpuSimdKind)
    return {"PeakBandwidthGBs", "IssueRateGops", "LaunchOverheadUs",
            "HalfSaturationBytes", "NarrowAccessEfficiency"};
  return {"PeakBandwidthGBs", "LaunchOverheadUs", "HalfSaturationBytes",
          "NarrowAccessEfficiency"};
}

CalibrationResult
target::fitTargetParams(TargetModel &T,
                        const std::vector<CalibrationSample> &Rows,
                        const std::vector<std::string> &FitNames,
                        const CalibrationConfig &Cfg) {
  CalibrationResult Res;
  if (FitNames.empty() || Rows.empty()) {
    Res.RmsLogError = std::sqrt(objective(T, Rows));
    return Res;
  }

  // Golden-section line search in log space per constant, cyclic order.
  const double Phi = (std::sqrt(5.0) - 1.0) / 2.0; // 0.618...
  double Best = objective(T, Rows);
  for (unsigned Sweep = 0; Sweep != Cfg.Sweeps; ++Sweep) {
    double SweepStart = Best;
    for (const std::string &Name : FitNames) {
      double Cur = 0;
      for (const TargetParam &P : T.params())
        if (P.Name == Name)
          Cur = P.Value;
      auto [RangeLo, RangeHi] = T.paramRange(Name);
      double Lo = std::max(RangeLo, Cur / Cfg.BracketFactor);
      double Hi = std::min(RangeHi, Cur * Cfg.BracketFactor);
      if (!(Lo > 0) || !(Hi > Lo)) {
        T.setParam(Name, Cur);
        continue;
      }
      double A = std::log(Lo), B = std::log(Hi);
      double X1 = B - Phi * (B - A), X2 = A + Phi * (B - A);
      double F1 = probe(T, Name, std::exp(X1), Rows);
      double F2 = probe(T, Name, std::exp(X2), Rows);
      for (unsigned It = 0; It != Cfg.LineSearchIters; ++It) {
        if (F1 <= F2) {
          B = X2;
          X2 = X1;
          F2 = F1;
          X1 = B - Phi * (B - A);
          F1 = probe(T, Name, std::exp(X1), Rows);
        } else {
          A = X1;
          X1 = X2;
          F1 = F2;
          X2 = A + Phi * (B - A);
          F2 = probe(T, Name, std::exp(X2), Rows);
        }
      }
      double XBest = F1 <= F2 ? X1 : X2;
      double FBest = std::min(F1, F2);
      // Keep the line-search winner only if it does not lose to the
      // incumbent (golden section assumes unimodality; the incumbent
      // is the safety net when that assumption frays).
      if (FBest <= Best) {
        T.setParam(Name, std::exp(XBest));
        Best = FBest;
      } else {
        T.setParam(Name, Cur);
      }
    }
    ++Res.SweepsRun;
    if (SweepStart - Best < 1e-16 && Sweep > 0)
      break; // Converged: the sweep moved nothing.
  }

  Res.RmsLogError = std::sqrt(Best);
  for (const std::string &Name : FitNames)
    for (const TargetParam &P : T.params())
      if (P.Name == Name)
        Res.Fitted.push_back(P);
  return Res;
}
