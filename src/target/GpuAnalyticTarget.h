//===- target/GpuAnalyticTarget.h - GPU warp/sector target ------*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's analytic GPU model behind the TargetModel interface:
/// 32-lane warps coalescing into 32-byte sectors (transaction model)
/// and the bandwidth-saturation / issue-rate / launch-overhead time
/// model of gpusim/GpuModel.h. simulate() delegates to simulateKernel,
/// so a GpuAnalyticTarget over a preset scores every kernel
/// bit-identically to the pre-subsystem `--gpu=PRESET` path (the
/// differential test in tests/target_test.cpp holds this).
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_TARGET_GPUANALYTICTARGET_H
#define POLYINJECT_TARGET_GPUANALYTICTARGET_H

#include "target/Target.h"

namespace pinj {
namespace target {

/// The registry kind string of this backend.
inline constexpr const char *GpuAnalyticKind = "gpu-analytic";

/// The canonical constant enumeration of a GpuModel (field name ->
/// value, stable order). Shared by GpuAnalyticTarget::params() and the
/// options fingerprint, which canonicalizes a null PipelineOptions::
/// Target as this backend over Options.Gpu — so `--gpu=v100`,
/// `--target=v100` and the default options all hash identically.
std::vector<TargetParam> gpuAnalyticParams(const GpuModel &M);

class GpuAnalyticTarget : public TargetModel {
public:
  explicit GpuAnalyticTarget(GpuModel M = GpuModel()) : M(M) {}

  std::string kind() const override { return GpuAnalyticKind; }
  const GpuModel &model() const { return M; }

  KernelSim accumulateCounters(const MappedKernel &Mk) const override;
  KernelSim finishTime(KernelSim Counters) const override;
  KernelSim simulate(const MappedKernel &Mk) const override;

  std::vector<TargetParam> params() const override {
    return gpuAnalyticParams(M);
  }
  bool setParam(const std::string &Name, double Value) override;
  std::pair<double, double>
  paramRange(const std::string &Name) const override;
  std::shared_ptr<TargetModel> clone() const override;

private:
  GpuModel M;
};

} // namespace target
} // namespace pinj

#endif // POLYINJECT_TARGET_GPUANALYTICTARGET_H
