//===- target/Target.h - Pluggable backend targets --------------*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The backend target subsystem: everything in the pipeline that turns a
/// mapped kernel into microseconds goes through a TargetModel. A target
/// is two halves composed:
///
///   transaction model : lane-group accesses -> memory transactions
///                       (accumulateCounters; the generic lane walk in
///                       gpusim/WarpSimulator.cpp parameterized by
///                       gpusim::TransactionModel), and
///   time model        : transactions + instructions -> microseconds
///                       (finishTime; pure arithmetic over the counters).
///
/// The split is what makes calibration cheap and deterministic: counters
/// do not depend on any time-model constant, so the calibrator
/// (Calibrate.h, tools/polyinject-calibrate.cpp) accumulates each
/// measured row once and re-applies candidate constants to fixed
/// counters.
///
/// Targets are *data, not code*: the registry resolves a name to a
/// built-in preset (v100/a100/p100/cpu-simd) or loads a versioned
/// `.ptgt` file (rename-atomic save, strict load, staleness counted on
/// target.rejects), and every model constant participates in the options
/// fingerprint (service/Fingerprint.cpp) so cache, TuningDb and
/// surrogate-dataset entries never alias across targets.
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_TARGET_TARGET_H
#define POLYINJECT_TARGET_TARGET_H

#include "gpusim/GpuModel.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace pinj {

struct PipelineOptions;

namespace target {

/// One named model constant. Every target exposes its constants as a
/// flat ordered name/value list: the calibrator fits them, `.ptgt`
/// files persist them, and the options fingerprint hashes them.
struct TargetParam {
  std::string Name;
  double Value = 0;
};

/// A backend target: transaction model + time model + named constants.
/// Implementations are immutable after construction/loading and safe to
/// share across threads (the daemon's worker pool and the evaluator's
/// worker pool both score against one shared const instance).
class TargetModel {
public:
  virtual ~TargetModel() = default;

  /// The backend family ("gpu-analytic", "cpu-simd"). Determines the
  /// simulation code path; part of the fingerprint identity.
  virtual std::string kind() const = 0;

  /// Display name (preset name or `.ptgt` name line). Labels reports
  /// and diagnostics only — it is *not* hashed; two targets with equal
  /// kind and constants are the same target whatever they are called.
  const std::string &name() const { return DisplayName; }
  void rename(std::string N) { DisplayName = std::move(N); }

  /// Transaction-model half: walks \p M and returns the counters
  /// (Transactions, TransactionBytes, UsefulBytes, MemInstructions,
  /// ComputeInstructions, Warps); time fields stay zero.
  virtual KernelSim accumulateCounters(const MappedKernel &M) const = 0;

  /// Time-model half: fills the time fields from the counters.
  virtual KernelSim finishTime(KernelSim Counters) const = 0;

  /// Full simulation: finishTime(accumulateCounters(M)) plus the
  /// backend's observability (span/metrics).
  virtual KernelSim simulate(const MappedKernel &M) const = 0;

  /// Every model constant in a stable order. The order is part of the
  /// `.ptgt` format and the fingerprint stream.
  virtual std::vector<TargetParam> params() const = 0;

  /// Sets one constant by name; false for an unknown name or a value
  /// outside the parameter's range.
  virtual bool setParam(const std::string &Name, double Value) = 0;

  /// Admissible [lo, hi] for a constant (calibration brackets its line
  /// search with this). Defaults to a wide positive range; efficiency
  /// fractions override to (0, 1].
  virtual std::pair<double, double>
  paramRange(const std::string &Name) const;

  /// Deep copy (the calibrator mutates a clone, never a shared target).
  virtual std::shared_ptr<TargetModel> clone() const = 0;

private:
  std::string DisplayName;
};

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

/// Built-in target names, stable order: the three GPU presets then
/// "cpu-simd". For --target/--gpu diagnostics.
std::vector<std::string> builtinTargetNames();

/// A fresh instance of a built-in target, or null for an unknown name.
std::shared_ptr<TargetModel> makeBuiltinTarget(const std::string &Name);

/// A default-constructed target of the given kind ("gpu-analytic",
/// "cpu-simd"), or null. The `.ptgt` loader and the calibrator start
/// from this and overwrite constants.
std::shared_ptr<TargetModel> makeTargetOfKind(const std::string &Kind);

/// The one-line list of everything --target accepts, for diagnostics:
/// "v100, a100, p100, cpu-simd, or a .ptgt file path".
std::string availableTargetsHint();

/// Resolves a --target/--gpu spec: a built-in name, else a path to a
/// `.ptgt` file. On failure returns null and fills \p Err with a
/// diagnostic that names the spec and lists the available targets.
std::shared_ptr<TargetModel> resolveTarget(const std::string &Spec,
                                           std::string *Err = nullptr);

//===----------------------------------------------------------------------===//
// .ptgt files
//===----------------------------------------------------------------------===//

/// Canonical text form (versioned header, %.17g constants; round-trips
/// bit-exactly through parseTarget).
std::string serializeTarget(const TargetModel &T);

/// Strict parse of serializeTarget output. Version bumps, unknown
/// kinds, unknown/duplicate/missing parameters and malformed numbers
/// all reject the whole file (counted in target.rejects).
std::shared_ptr<TargetModel> parseTarget(const std::string &Text,
                                         std::string *Err = nullptr);

/// Rename-atomic write of \p T to \p Path.
bool saveTargetFile(const TargetModel &T, const std::string &Path,
                    std::string *Err = nullptr);

/// Loads and validates a `.ptgt` file (rejections counted in
/// target.rejects).
std::shared_ptr<TargetModel> loadTargetFile(const std::string &Path,
                                            std::string *Err = nullptr);

//===----------------------------------------------------------------------===//
// Options integration
//===----------------------------------------------------------------------===//

/// Simulates \p M under the options' effective target:
/// Options.Target when set, else the built-in GPU analytic path over
/// Options.Gpu (the legacy default — bit-identical to
/// simulateKernel(M, Options.Gpu)). Every simulation the pipeline, the
/// tuner's evaluator and the tvm proxy perform goes through here.
KernelSim simulateForOptions(const MappedKernel &M,
                             const PipelineOptions &O);

/// A short stable identity token for the options' effective target:
/// "<kind>-<16 hex>" where the hash covers the kind and every constant
/// (not the display name). Stamps surrogate datasets (model/Dataset.h)
/// so training samples never mix targets.
std::string targetIdForOptions(const PipelineOptions &O);

} // namespace target
} // namespace pinj

#endif // POLYINJECT_TARGET_TARGET_H
