//===- target/CpuSimdTarget.h - CPU SIMD cache-line target ------*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A structurally different second backend: a multicore CPU with SIMD
/// units. The transaction model groups 16 vector lanes over 64-byte
/// cache lines (vs the GPU's 32-lane warps over 32-byte sectors), and
/// the time model differs in shape, not just constants:
///
///  - Saturation ramps with the *total bytes streamed*
///    (TransactionBytes / HalfSaturationBytes — the prefetchers warm up
///    over the stream), not with warps-in-flight: a CPU has no
///    massively-parallel latency hiding, so residency does not appear.
///  - Memory and compute time *add* (Time = spawn + mem + compute):
///    a few in-order-ish cores overlap far less than a GPU's
///    max(mem, compute) regime.
///  - The issue rate is ~16x lower, so instruction-heavy configs
///    (replayed/gathered scalar lanes) go compute-bound — which is why
///    the tuned winner can differ from the GPU's on the same operator
///    (the bench_target transfer matrix demonstrates this).
///  - Narrow (scalar) accesses pay a much steeper penalty
///    (NarrowAccessEfficiency 0.5 vs the GPU's 0.85): without wide
///    vector loads the core cannot keep the line-fill buffers busy.
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_TARGET_CPUSIMDTARGET_H
#define POLYINJECT_TARGET_CPUSIMDTARGET_H

#include "target/Target.h"

namespace pinj {
namespace target {

/// The registry kind string of this backend.
inline constexpr const char *CpuSimdKind = "cpu-simd";

/// Machine constants; defaults approximate a 16-core AVX-512 socket.
struct CpuSimdModel {
  unsigned SimdLanes = 16;      ///< Vector lanes grouped per issue.
  unsigned CacheLineBytes = 64; ///< Transaction granularity.
  double PeakBandwidthGBs = 80.0;  ///< Socket DRAM bandwidth.
  double IssueRateGops = 250.0;    ///< Scalar-op issue, whole socket.
  double LaunchOverheadUs = 10.0;  ///< Parallel-region spawn + join.
  /// Bytes streamed at which half the peak bandwidth is reached (the
  /// prefetch ramp); the saturation curve is x / (1 + x).
  double HalfSaturationBytes = 512.0 * 1024.0;
  /// Bandwidth efficiency floor for tiny launches.
  double MinEfficiency = 0.05;
  /// Bandwidth a scalar-access kernel reaches relative to a full-width
  /// vector one.
  double NarrowAccessEfficiency = 0.5;
};

class CpuSimdTarget : public TargetModel {
public:
  explicit CpuSimdTarget(CpuSimdModel M = CpuSimdModel()) : M(M) {}

  std::string kind() const override { return CpuSimdKind; }
  const CpuSimdModel &model() const { return M; }

  KernelSim accumulateCounters(const MappedKernel &Mk) const override;
  KernelSim finishTime(KernelSim Counters) const override;
  KernelSim simulate(const MappedKernel &Mk) const override;

  std::vector<TargetParam> params() const override;
  bool setParam(const std::string &Name, double Value) override;
  std::pair<double, double>
  paramRange(const std::string &Name) const override;
  std::shared_ptr<TargetModel> clone() const override;

private:
  CpuSimdModel M;
};

} // namespace target
} // namespace pinj

#endif // POLYINJECT_TARGET_CPUSIMDTARGET_H
