//===- target/Calibrate.h - Fit target constants from a table ---*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fits a target's time-model constants to a measured (kernel, config,
/// time) table. The transaction/time split of TargetModel makes this a
/// small deterministic optimization: each row's counters are
/// accumulated once (they depend only on the transaction model, which
/// is not fitted), and the fit minimizes the mean squared *log* error
/// of finishTime over the rows by cyclic coordinate descent with a
/// golden-section line search per constant — fixed iteration counts,
/// fixed order, no randomness, no threads, so two runs over the same
/// table produce bit-identical constants (and therefore bit-identical
/// `.ptgt` files).
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_TARGET_CALIBRATE_H
#define POLYINJECT_TARGET_CALIBRATE_H

#include "target/Target.h"

namespace pinj {
namespace target {

/// One measured table row, reduced to what the time model consumes.
struct CalibrationSample {
  KernelSim Counters; ///< accumulateCounters of the row's mapped kernel.
  double MeasuredUs = 0;
};

struct CalibrationConfig {
  /// Full coordinate-descent sweeps over the fitted constants. Sweeps
  /// are cheap (pure arithmetic over pre-accumulated counters), and
  /// coupled constants (bandwidth / half-saturation / launch overhead)
  /// crawl along a curved valley, so the default is generous — the
  /// early-exit below stops sooner whenever a sweep moves nothing.
  unsigned Sweeps = 400;
  /// Golden-section iterations per line search.
  unsigned LineSearchIters = 48;
  /// Per-sweep search bracket: [current/BracketFactor,
  /// current*BracketFactor] in log space, intersected with the
  /// parameter's admissible range. Successive sweeps can therefore
  /// travel arbitrarily far from the initial guess.
  double BracketFactor = 4.0;
};

struct CalibrationResult {
  /// Root of the mean squared log-time error over the table.
  double RmsLogError = 0;
  unsigned SweepsRun = 0;
  /// The fitted constants (FitNames order), after the final sweep.
  std::vector<TargetParam> Fitted;
};

/// Fits the named constants of \p T (mutated in place; clone a shared
/// target first) to \p Rows. Constants not named keep their current
/// values. Rows with non-positive measured times are ignored.
CalibrationResult fitTargetParams(TargetModel &T,
                                  const std::vector<CalibrationSample> &Rows,
                                  const std::vector<std::string> &FitNames,
                                  const CalibrationConfig &Cfg =
                                      CalibrationConfig());

/// The constants a calibration fits by default for \p Kind. GPU tables
/// from this corpus are memory-bound in every row, which leaves the
/// issue rate unidentifiable — it is fitted only on cpu-simd, whose
/// additive time model exposes it.
std::vector<std::string> defaultFitParams(const std::string &Kind);

} // namespace target
} // namespace pinj

#endif // POLYINJECT_TARGET_CALIBRATE_H
