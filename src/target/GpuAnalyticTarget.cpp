//===- target/GpuAnalyticTarget.cpp ---------------------------------------===//

#include "target/GpuAnalyticTarget.h"

#include <cmath>

using namespace pinj;
using namespace pinj::target;

std::vector<TargetParam> target::gpuAnalyticParams(const GpuModel &M) {
  return {
      {"WarpSize", static_cast<double>(M.WarpSize)},
      {"SectorBytes", static_cast<double>(M.SectorBytes)},
      {"PeakBandwidthGBs", M.PeakBandwidthGBs},
      {"IssueRateGops", M.IssueRateGops},
      {"LaunchOverheadUs", M.LaunchOverheadUs},
      {"OutstandingRequestsPerWarp", M.OutstandingRequestsPerWarp},
      {"HalfSaturationBytes", M.HalfSaturationBytes},
      {"MinEfficiency", M.MinEfficiency},
      {"NarrowAccessEfficiency", M.NarrowAccessEfficiency},
  };
}

KernelSim GpuAnalyticTarget::accumulateCounters(const MappedKernel &Mk) const {
  SectorTransactionModel Tx(M.WarpSize, M.SectorBytes);
  return accumulateTransactions(Mk, Tx);
}

KernelSim GpuAnalyticTarget::finishTime(KernelSim Counters) const {
  return finishGpuTime(Counters, M);
}

KernelSim GpuAnalyticTarget::simulate(const MappedKernel &Mk) const {
  // Delegate to the gpusim entry point — span, fail-point and metrics
  // included — so this target is indistinguishable from the legacy
  // simulateKernel(M, Gpu) path, bit for bit.
  return simulateKernel(Mk, M);
}

bool GpuAnalyticTarget::setParam(const std::string &Name, double Value) {
  auto [Lo, Hi] = paramRange(Name);
  if (!(Value >= Lo && Value <= Hi) || !std::isfinite(Value))
    return false;
  if (Name == "WarpSize")
    M.WarpSize = static_cast<unsigned>(Value);
  else if (Name == "SectorBytes")
    M.SectorBytes = static_cast<unsigned>(Value);
  else if (Name == "PeakBandwidthGBs")
    M.PeakBandwidthGBs = Value;
  else if (Name == "IssueRateGops")
    M.IssueRateGops = Value;
  else if (Name == "LaunchOverheadUs")
    M.LaunchOverheadUs = Value;
  else if (Name == "OutstandingRequestsPerWarp")
    M.OutstandingRequestsPerWarp = Value;
  else if (Name == "HalfSaturationBytes")
    M.HalfSaturationBytes = Value;
  else if (Name == "MinEfficiency")
    M.MinEfficiency = Value;
  else if (Name == "NarrowAccessEfficiency")
    M.NarrowAccessEfficiency = Value;
  else
    return false;
  return true;
}

std::pair<double, double>
GpuAnalyticTarget::paramRange(const std::string &Name) const {
  if (Name == "MinEfficiency" || Name == "NarrowAccessEfficiency")
    return {0.001, 1.0};
  if (Name == "WarpSize" || Name == "SectorBytes")
    return {1.0, 4096.0};
  return TargetModel::paramRange(Name);
}

std::shared_ptr<TargetModel> GpuAnalyticTarget::clone() const {
  auto Copy = std::make_shared<GpuAnalyticTarget>(M);
  Copy->rename(name());
  return Copy;
}
