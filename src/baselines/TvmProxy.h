//===- baselines/TvmProxy.h - Manual-schedule baseline ----------*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A stand-in for the paper's "tvm" column: TVM's manual scheduling
/// approach. Each primitive statement runs as its own kernel launch
/// (TVM does not see MindSpore's graph-kernel fusion), with a
/// hand-tuned-style schedule: the write-contiguous iterator goes
/// innermost (coalesced stores), and transpose-like statements whose
/// reads cannot coalesce under that order are modeled as TVM's
/// shared-memory tiled schedules (both sides coalesced at the cost of
/// extra instructions). See DESIGN.md for the substitution rationale.
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_BASELINES_TVMPROXY_H
#define POLYINJECT_BASELINES_TVMPROXY_H

#include "gpusim/GpuModel.h"

namespace pinj {

namespace target {
class TargetModel;
}

/// Result of simulating one operator under the TVM proxy.
struct TvmProxyResult {
  double TimeUs = 0;          ///< Total over all per-statement launches.
  unsigned Launches = 0;
  KernelSim Aggregate;        ///< Summed transaction statistics.
};

/// A single-statement kernel around statement \p Stmt of \p K.
Kernel extractStatement(const Kernel &K, unsigned Stmt);

/// The manual schedule for a single-statement kernel: original iterator
/// order with the write-contiguous iterator rotated innermost.
Schedule buildTvmSchedule(const Kernel &SubKernel);

/// Simulates \p K under the TVM proxy (one launch per statement).
TvmProxyResult simulateTvmProxy(const Kernel &K, const GpuModel &Model,
                                const GpuMappingOptions &Mapping);

/// The target-backend form. A GPU-analytic target delegates to the
/// GpuModel overload above (bit-identical, including the shared-memory
/// tile rewrite for uncoalesced transposes); any other backend scores
/// the per-statement launches directly — the tile rewrite is a CUDA
/// shared-memory idiom and does not transfer.
TvmProxyResult simulateTvmProxy(const Kernel &K,
                                const target::TargetModel &T,
                                const GpuMappingOptions &Mapping);

} // namespace pinj

#endif // POLYINJECT_BASELINES_TVMPROXY_H
