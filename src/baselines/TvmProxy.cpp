//===- baselines/TvmProxy.cpp ---------------------------------------------===//

#include "baselines/TvmProxy.h"

#include "support/FailPoint.h"

#include "influence/AccessAnalysis.h"
#include "target/GpuAnalyticTarget.h"

#include <algorithm>

using namespace pinj;

Kernel pinj::extractStatement(const Kernel &K, unsigned Stmt) {
  Kernel Sub;
  Sub.Name = K.Name + "." + K.Stmts[Stmt].Name;
  Sub.ParamNames = K.ParamNames;
  Sub.Tensors = K.Tensors;
  Statement S = K.Stmts[Stmt];
  S.OrigBeta.assign(S.numIters() + 1, 0);
  Sub.Stmts.push_back(std::move(S));
  return Sub;
}

Schedule pinj::buildTvmSchedule(const Kernel &SubKernel) {
  assert(SubKernel.Stmts.size() == 1 && "TVM proxy schedules one statement");
  const Statement &S = SubKernel.Stmts[0];
  std::vector<AccessStrides> Strides = analyzeStrides(SubKernel, S);

  // Iterator order: original, with the iterator that makes the store
  // contiguous rotated to the innermost position (a hand-written
  // schedule binds threads to the output's contiguous axis).
  std::vector<unsigned> Order(S.numIters());
  for (unsigned I = 0; I != Order.size(); ++I)
    Order[I] = I;
  const AccessStrides &Write = Strides[0];
  for (unsigned I = 0, E = S.numIters(); I != E; ++I) {
    if (Write.isContiguousIn(I)) {
      Order.erase(std::find(Order.begin(), Order.end(), I));
      Order.push_back(I);
      break;
    }
  }

  Schedule Sched;
  Sched.Transforms.assign(1, IntMatrix(0, SubKernel.rowWidth(S)));
  for (unsigned D = 0, E = Order.size(); D != E; ++D) {
    IntVector Row(SubKernel.rowWidth(S), 0);
    Row[Order[D]] = 1;
    Sched.Transforms[0].appendRow(Row);
    Sched.Dims.push_back(DimInfo());
  }
  annotateParallelism(SubKernel, Sched);
  return Sched;
}

namespace {

/// True if some read access stays badly strided along the innermost
/// dimension of the manual schedule — the case TVM's library schedules
/// handle with a shared-memory tile (transposes and layout permutes).
bool needsSharedMemoryTile(const Kernel &SubKernel, const Schedule &S) {
  const Statement &Stmt = SubKernel.Stmts[0];
  if (S.numDims() == 0)
    return false;
  // Innermost bound iterator.
  const IntVector &Row = S.Transforms[0].row(S.numDims() - 1);
  unsigned Inner = Stmt.numIters();
  for (unsigned I = 0, E = Stmt.numIters(); I != E; ++I)
    if (Row[I] != 0)
      Inner = I;
  if (Inner == Stmt.numIters())
    return false;
  std::vector<AccessStrides> Strides = analyzeStrides(SubKernel, Stmt);
  for (unsigned A = 1; A < Strides.size(); ++A) {
    Int Stride = Strides[A].StridePerIter[Inner];
    if (Stride < 0)
      Stride = -Stride;
    if (Stride > 8)
      return true; // Uncoalesced read under the manual order.
  }
  return false;
}

} // namespace

TvmProxyResult pinj::simulateTvmProxy(const Kernel &K, const GpuModel &Model,
                                      const GpuMappingOptions &Mapping) {
  failpoint::hit("baselines.tvm");
  TvmProxyResult Result;
  for (unsigned Stmt = 0, E = K.Stmts.size(); Stmt != E; ++Stmt) {
    Kernel Sub = extractStatement(K, Stmt);
    Schedule Sched = buildTvmSchedule(Sub);
    MappedKernel M = mapToGpu(Sub, Sched, Mapping);
    KernelSim Sim = simulateKernel(M, Model);
    if (needsSharedMemoryTile(Sub, Sched)) {
      // Shared-memory tiling: both global sides coalesced (transactions
      // shrink to the useful bytes), at ~2x the memory instructions for
      // the staging through shared memory.
      double IdealTx = Sim.UsefulBytes / Model.SectorBytes;
      if (IdealTx < Sim.Transactions) {
        Sim.Transactions = IdealTx;
        Sim.TransactionBytes = Sim.UsefulBytes;
        Sim.MemInstructions *= 2;
        double WarpRequests =
            Sim.MemInstructions / std::max(1.0, double(Model.WarpSize));
        double BytesPerRequest =
            WarpRequests > 0 ? Sim.TransactionBytes / WarpRequests : 0.0;
        double BytesPerLane = Sim.MemInstructions > 0
                                  ? Sim.UsefulBytes / Sim.MemInstructions
                                  : 4.0;
        double Efficiency = Model.bandwidthEfficiency(
            Sim.Warps, BytesPerRequest, BytesPerLane);
        Sim.MemTimeUs = Sim.TransactionBytes /
                        (Model.PeakBandwidthGBs * Efficiency * 1e9) * 1e6;
        Sim.ComputeTimeUs = (Sim.MemInstructions + Sim.ComputeInstructions) /
                            (Model.IssueRateGops * 1e9) * 1e6;
        Sim.TimeUs = Model.LaunchOverheadUs +
                     std::max(Sim.MemTimeUs, Sim.ComputeTimeUs);
      }
    }
    Result.TimeUs += Sim.TimeUs;
    ++Result.Launches;
    Result.Aggregate.Transactions += Sim.Transactions;
    Result.Aggregate.TransactionBytes += Sim.TransactionBytes;
    Result.Aggregate.UsefulBytes += Sim.UsefulBytes;
    Result.Aggregate.MemInstructions += Sim.MemInstructions;
    Result.Aggregate.ComputeInstructions += Sim.ComputeInstructions;
    Result.Aggregate.TimeUs += Sim.TimeUs;
  }
  return Result;
}

TvmProxyResult pinj::simulateTvmProxy(const Kernel &K,
                                      const target::TargetModel &T,
                                      const GpuMappingOptions &Mapping) {
  if (const auto *G = dynamic_cast<const target::GpuAnalyticTarget *>(&T))
    return simulateTvmProxy(K, G->model(), Mapping);
  failpoint::hit("baselines.tvm");
  TvmProxyResult Result;
  for (unsigned Stmt = 0, E = K.Stmts.size(); Stmt != E; ++Stmt) {
    Kernel Sub = extractStatement(K, Stmt);
    Schedule Sched = buildTvmSchedule(Sub);
    MappedKernel M = mapToGpu(Sub, Sched, Mapping);
    KernelSim Sim = T.simulate(M);
    Result.TimeUs += Sim.TimeUs;
    ++Result.Launches;
    Result.Aggregate.Transactions += Sim.Transactions;
    Result.Aggregate.TransactionBytes += Sim.TransactionBytes;
    Result.Aggregate.UsefulBytes += Sim.UsefulBytes;
    Result.Aggregate.MemInstructions += Sim.MemInstructions;
    Result.Aggregate.ComputeInstructions += Sim.ComputeInstructions;
    Result.Aggregate.TimeUs += Sim.TimeUs;
  }
  return Result;
}
