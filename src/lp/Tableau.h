//===- lp/Tableau.h - Flat exact simplex tableau ----------------*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dense exact-rational simplex tableau behind solveLp and the
/// warm-started branch and bound. One flat row-major buffer replaces the
/// old per-row std::vector<Rational> (one allocation, contiguous pivot
/// loops, zero-skip over the pivot row's sparsity), and the class grew
/// the warm-start operations the optimized solvers need:
///
///   - solveTwoPhase() replicates the original two-phase primal simplex
///     pivot-for-pivot (Dantzig with a Bland switch, identical
///     tie-breaks), so exact-mode callers produce bit-identical results;
///   - addBoundRow()/tightenBoundRow() append or tighten single-variable
///     bound rows in the current basis (branch-and-bound branches by
///     bounds instead of copying the problem);
///   - dualReoptimize() re-enters optimization after a bound change
///     (the basis stays dual feasible, so the dual simplex restores
///     primal feasibility without a phase 1);
///   - addPinEquality() adds a lexmin level-pin row with one artificial
///     and a mini phase 1 from the current basis, so solveLexMin reuses
///     its feasible basis across objective levels;
///   - setObjective()/reoptimize() swap in the next level's objective
///     and re-minimize from the current basis.
///
/// Capacity for rows/columns added after build() is reserved up front so
/// warm growth never re-layouts the buffer.
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_LP_TABLEAU_H
#define POLYINJECT_LP_TABLEAU_H

#include "lp/Simplex.h"

namespace pinj {

class SimplexTableau {
public:
  enum class Outcome { Optimal, Unbounded, Infeasible, Budget };

  SimplexTableau() = default;

  /// Loads \p Base's constraints followed by \p Extra (the
  /// branch-and-bound path rows) and sets up the phase-1 basis with the
  /// original column layout: structural | slacks (row order) |
  /// artificials (only where needed). Reserves capacity for
  /// \p ReserveRows extra rows and \p ReserveCols extra columns.
  void build(const LpProblem &Base, const std::vector<LpConstraint> &Extra,
             unsigned ReserveRows = 0, unsigned ReserveCols = 0);

  /// Runs phase 1 + phase 2 for \p Objective (empty = feasibility),
  /// replicating the reference solver's pivot sequence exactly. Leaves
  /// the tableau at the optimal basis on Outcome::Optimal.
  Outcome solveTwoPhase(const IntVector &Objective);

  /// Swaps in a new objective over the structural variables and
  /// re-minimizes from the current (primal feasible) basis — phase 2
  /// only, no phase 1.
  Outcome reoptimize(const IntVector &Objective);

  /// Restores primal feasibility after a bound change with the dual
  /// simplex; the basis must be dual feasible (it is, right after an
  /// optimal (re)optimization). Outcome::Infeasible means the primal
  /// problem became empty.
  Outcome dualReoptimize();

  /// Appends the row  x[Var] <= Bound  (\p Upper) or  x[Var] >= Bound,
  /// expressed in the current basis with a fresh basic slack.
  /// \returns the slack's column, the handle for tightenBoundRow.
  unsigned addBoundRow(unsigned Var, bool Upper, Int Bound);

  /// Tightens a bound row added by addBoundRow in place: shifts every
  /// current right-hand side by Delta * column(SlackCol), where \p Delta
  /// is the change of the row's original right-hand side (new bound
  /// minus old bound for upper rows, old minus new for lower rows).
  void tightenBoundRow(unsigned SlackCol, Int Delta);

  /// Appends the lexmin pin row  Coeffs . x == Rhs  with one artificial
  /// variable and minimizes it to zero from the current feasible basis
  /// (the "mini phase 1"). Outcome::Infeasible when the row cannot be
  /// satisfied.
  Outcome addPinEquality(const IntVector &Coeffs, Int Rhs);

  /// Writes the structural solution of the current basis.
  void extractPoint(std::vector<Rational> &Point) const;

  /// Pivots performed since build().
  unsigned pivots() const { return PivotCount; }

  unsigned numRows() const { return Rows; }
  unsigned numCols() const { return Cols; }

private:
  Rational *row(unsigned R) { return Cells.data() + R * Stride; }
  const Rational *row(unsigned R) const { return Cells.data() + R * Stride; }
  Rational &at(unsigned R, unsigned C) { return Cells[R * Stride + C]; }
  Rational &rhs(unsigned R) { return Cells[R * Stride + Stride - 1]; }
  const Rational &rhs(unsigned R) const {
    return Cells[R * Stride + Stride - 1];
  }
  Rational &obj(unsigned C) { return ObjRow[C]; }
  Rational &objValue() { return ObjRow[Stride - 1]; }

  /// Appends a fresh row/column pair (value cells zeroed); \returns the
  /// new column index. Capacity must have been reserved.
  unsigned appendRowAndColumn();

  /// Expresses dense row \p Form (over structural and existing columns)
  /// in the current basis by eliminating basic variables, writing into
  /// the freshly appended row \p R. Scratch holds the dense row with the
  /// right-hand side at Stride - 1.
  void reduceAgainstBasis(std::vector<Rational> &Dense);

  Outcome minimize();
  void priceOutBasis();
  void pivot(unsigned PivotRow, unsigned PivotCol);

  unsigned Rows = 0;
  unsigned Cols = 0;   ///< Active columns (excluding the RHS).
  unsigned Stride = 0; ///< Row stride; RHS lives at Stride - 1.
  unsigned RowCapacity = 0;
  unsigned NumStructural = 0;
  unsigned PivotCount = 0;
  std::vector<Rational> Cells;
  std::vector<Rational> ObjRow;
  std::vector<unsigned> Basis;
  std::vector<bool> ColIsArtificial;
  std::vector<unsigned> NonZeroScratch; ///< Pivot-row sparsity pattern.
  std::vector<Rational> DenseScratch;   ///< Row-append scratch.
};

} // namespace pinj

#endif // POLYINJECT_LP_TABLEAU_H
