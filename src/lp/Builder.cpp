//===- lp/Builder.cpp -----------------------------------------------------===//

#include "lp/Builder.h"

using namespace pinj;

void SparseForm::addScaled(const SparseForm &Other, Int Scale) {
  if (Scale == 0)
    return;
  for (const auto &[Var, Coeff] : Other.Terms)
    Terms.emplace_back(Var, checkedMul(Coeff, Scale));
  Constant = checkedAdd(Constant, checkedMul(Other.Constant, Scale));
}

IntVector SparseForm::densify(unsigned NumVars) const {
  IntVector Row(NumVars, 0);
  for (const auto &[Var, Coeff] : Terms) {
    assert(Var < NumVars && "sparse term references unknown variable");
    Row[Var] = checkedAdd(Row[Var], Coeff);
  }
  return Row;
}

unsigned IlpBuilder::addVar(std::string Name, bool IsInteger) {
  Names.push_back(std::move(Name));
  Integrality.push_back(IsInteger);
  return Names.size() - 1;
}

void IlpBuilder::addUpperBound(unsigned Var, Int Bound) {
  SparseForm Form;
  Form.addTerm(Var, -1);
  Form.addConstant(Bound);
  addGe(Form);
}

void IlpBuilder::truncate(unsigned NumRows, unsigned NumObjectives) {
  assert(NumRows <= Rows.size() && NumObjectives <= Objectives.size() &&
         "truncate beyond current size");
  Rows.resize(NumRows);
  Objectives.resize(NumObjectives);
}

IlpBuilder::ConstraintBlock IlpBuilder::captureBlock(unsigned VarMark,
                                                     unsigned RowMark) const {
  assert(VarMark <= numVars() && RowMark <= Rows.size() &&
         "capture marks beyond current size");
  ConstraintBlock Block;
  Block.VarBase = VarMark;
  for (unsigned V = VarMark, E = numVars(); V != E; ++V)
    Block.Vars.emplace_back(Names[V], static_cast<bool>(Integrality[V]));
  for (unsigned R = RowMark, E = Rows.size(); R != E; ++R)
    Block.Rows.emplace_back(Rows[R].Form, Rows[R].Kind);
  return Block;
}

void IlpBuilder::replayBlock(const ConstraintBlock &Block) {
  const unsigned NewBase = numVars();
  for (const auto &[Name, IsInteger] : Block.Vars)
    addVar(Name, IsInteger);
  for (const auto &[Form, Kind] : Block.Rows) {
    SparseForm Rebased = Form;
    for (auto &[Var, Coeff] : Rebased.Terms) {
      (void)Coeff;
      if (Var >= Block.VarBase)
        Var = Var - Block.VarBase + NewBase;
    }
    Rows.push_back({std::move(Rebased), Kind});
  }
}

std::pair<IlpProblem, std::vector<LexObjective>>
IlpBuilder::materialize() const {
  IlpProblem Problem(numVars());
  for (unsigned V = 0, E = numVars(); V != E; ++V)
    if (Integrality[V])
      Problem.markInteger(V);
  for (const Row &R : Rows) {
    IntVector Dense = R.Form.densify(numVars());
    switch (R.Kind) {
    case RowGe:
      Problem.Lp.addGe(std::move(Dense), R.Form.Constant);
      break;
    case RowEq:
      Problem.Lp.addEq(std::move(Dense), R.Form.Constant);
      break;
    case RowLe:
      Problem.Lp.addLe(std::move(Dense), R.Form.Constant);
      break;
    }
  }
  std::vector<LexObjective> Levels;
  for (const SparseForm &Objective : Objectives)
    Levels.emplace_back(Objective.densify(numVars()));
  return {std::move(Problem), std::move(Levels)};
}

IlpResult IlpBuilder::solve() const {
  auto [Problem, Levels] = materialize();
  return solveLexMin(std::move(Problem), Levels);
}
