//===- lp/Simplex.h - Exact rational simplex --------------------*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An exact two-phase primal simplex over rationals with Bland's rule.
/// All variables are nonnegative; the scheduler arranges its unknowns so
/// that this holds (paper Eq. (3): nonnegative scheduling coefficients).
/// This solver plays the role isl's ILP core plays in the paper.
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_LP_SIMPLEX_H
#define POLYINJECT_LP_SIMPLEX_H

#include "math/Matrix.h"
#include "math/Rational.h"

#include <cstdint>
#include <vector>

namespace pinj {

/// One affine constraint over the problem variables:
/// Coeffs . x + Constant  (Kind)  0.
struct LpConstraint {
  enum KindTy { GE, LE, EQ };

  IntVector Coeffs;
  Int Constant = 0;
  KindTy Kind = GE;

  LpConstraint() = default;
  LpConstraint(IntVector C, Int K, KindTy Ki)
      : Coeffs(std::move(C)), Constant(K), Kind(Ki) {}
};

/// A linear program: minimize Objective . x + ObjectiveConstant subject to
/// the constraints and x >= 0.
struct LpProblem {
  unsigned NumVars = 0;
  std::vector<LpConstraint> Constraints;
  IntVector Objective;         ///< Minimized; empty means feasibility only.
  Int ObjectiveConstant = 0;

  explicit LpProblem(unsigned NumVars = 0) : NumVars(NumVars) {}

  /// Adds Coeffs . x + Constant >= 0.
  void addGe(IntVector Coeffs, Int Constant) {
    Constraints.emplace_back(std::move(Coeffs), Constant, LpConstraint::GE);
  }
  /// Adds Coeffs . x + Constant <= 0.
  void addLe(IntVector Coeffs, Int Constant) {
    Constraints.emplace_back(std::move(Coeffs), Constant, LpConstraint::LE);
  }
  /// Adds Coeffs . x + Constant == 0.
  void addEq(IntVector Coeffs, Int Constant) {
    Constraints.emplace_back(std::move(Coeffs), Constant, LpConstraint::EQ);
  }
  /// Adds x[Var] <= Bound.
  void addUpperBound(unsigned Var, Int Bound);
};

/// Result of an LP solve. BudgetExceeded means an enclosing SolverBudget
/// (see lp/Budget.h) ran out of pivots or wall clock before the solve
/// finished; callers treat it like Infeasible but must not cache it as a
/// proof of infeasibility.
struct LpResult {
  enum StatusTy { Optimal, Infeasible, Unbounded, BudgetExceeded };

  StatusTy Status = Infeasible;
  Rational Value;                 ///< Optimal objective value.
  std::vector<Rational> Point;    ///< Optimal assignment (NumVars entries).

  bool isOptimal() const { return Status == Optimal; }
};

/// Solves \p Problem with an exact two-phase simplex.
LpResult solveLp(const LpProblem &Problem);

/// Solves \p Problem with \p ExtraRows appended to its constraints —
/// exactly equivalent to copying the problem and appending the rows,
/// but without the copy. Branch and bound threads its path of branching
/// rows through here.
LpResult solveLpExt(const LpProblem &Problem,
                    const std::vector<LpConstraint> &ExtraRows);

/// Simplex pivots performed by THIS thread since it started. The global
/// `lp.simplex_pivots` counter mixes all batch workers together; the
/// lexmin driver diffs this tally around a dimension's solve to
/// attribute pivots exactly per dimension. Both the cold path
/// (solveLpExt) and the warm tableau sites add to it.
std::uint64_t threadSimplexPivots();
/// Adds \p N pivots to this thread's tally (warm-path tableau sites).
void addThreadSimplexPivots(std::uint64_t N);

} // namespace pinj

#endif // POLYINJECT_LP_SIMPLEX_H
