//===- lp/Reference.cpp ---------------------------------------------------===//
//
// The pre-optimization solver stack, kept as a differential oracle. Do
// not "improve" this file: its value is being the unoptimized original.
//
//===----------------------------------------------------------------------===//

#include "lp/Reference.h"

#include "support/Status.h"

#include <optional>

using namespace pinj;

namespace {

enum class MinimizeOutcome { Optimal, Unbounded };

/// A classic dense simplex tableau over exact rationals (the original
/// per-row vector-of-vectors layout).
class RefTableau {
public:
  RefTableau(unsigned NumRows, unsigned NumCols)
      : Rows(NumRows), Cols(NumCols),
        Cells(NumRows, std::vector<Rational>(NumCols + 1, Rational(0))),
        ObjRow(NumCols + 1, Rational(0)), Basis(NumRows, 0) {}

  Rational &at(unsigned R, unsigned C) { return Cells[R][C]; }
  Rational &rhs(unsigned R) { return Cells[R][Cols]; }
  Rational &obj(unsigned C) { return ObjRow[C]; }
  Rational &objValue() { return ObjRow[Cols]; }
  unsigned basicVar(unsigned R) const { return Basis[R]; }
  void setBasicVar(unsigned R, unsigned Var) { Basis[R] = Var; }

  void priceOutBasis() {
    for (unsigned R = 0; R != Rows; ++R) {
      unsigned BV = Basis[R];
      if (ObjRow[BV].isZero())
        continue;
      Rational Factor = ObjRow[BV];
      for (unsigned C = 0; C <= Cols; ++C)
        ObjRow[C] -= Factor * Cells[R][C];
    }
  }

  MinimizeOutcome minimize() {
    unsigned DegenerateStreak = 0;
    const unsigned BlandThreshold = 2 * (Rows + Cols) + 16;
    for (;;) {
      bool UseBland = DegenerateStreak > BlandThreshold;
      unsigned Entering = Cols;
      for (unsigned C = 0; C != Cols; ++C) {
        if (!ObjRow[C].isNegative())
          continue;
        if (UseBland) {
          Entering = C; // Lowest index.
          break;
        }
        if (Entering == Cols || ObjRow[C] < ObjRow[Entering])
          Entering = C; // Most negative reduced cost.
      }
      if (Entering == Cols)
        return MinimizeOutcome::Optimal;

      // Ratio test; Bland tie-break on the basic variable index.
      unsigned Leaving = Rows;
      Rational BestRatio;
      for (unsigned R = 0; R != Rows; ++R) {
        if (!Cells[R][Entering].isPositive())
          continue;
        Rational Ratio = Cells[R][Cols] / Cells[R][Entering];
        if (Leaving == Rows || Ratio < BestRatio ||
            (Ratio == BestRatio && Basis[R] < Basis[Leaving])) {
          Leaving = R;
          BestRatio = Ratio;
        }
      }
      if (Leaving == Rows)
        return MinimizeOutcome::Unbounded;
      if (BestRatio.isZero())
        ++DegenerateStreak; // No objective progress: possible cycling.
      else
        DegenerateStreak = 0;
      pivot(Leaving, Entering);
    }
  }

  void pivot(unsigned PivotRow, unsigned PivotCol) {
    Rational Pivot = Cells[PivotRow][PivotCol];
    assert(!Pivot.isZero() && "pivot on zero entry");
    for (unsigned C = 0; C <= Cols; ++C)
      Cells[PivotRow][C] /= Pivot;
    for (unsigned R = 0; R != Rows; ++R) {
      if (R == PivotRow || Cells[R][PivotCol].isZero())
        continue;
      Rational Factor = Cells[R][PivotCol];
      for (unsigned C = 0; C <= Cols; ++C)
        Cells[R][C] -= Factor * Cells[PivotRow][C];
    }
    if (!ObjRow[PivotCol].isZero()) {
      Rational Factor = ObjRow[PivotCol];
      for (unsigned C = 0; C <= Cols; ++C)
        ObjRow[C] -= Factor * Cells[PivotRow][C];
    }
    Basis[PivotRow] = PivotCol;
  }

private:
  unsigned Rows;
  unsigned Cols;
  std::vector<std::vector<Rational>> Cells;
  std::vector<Rational> ObjRow;
  std::vector<unsigned> Basis;
};

LpResult refSolveLpImpl(const LpProblem &Problem) {
  unsigned NumStructural = Problem.NumVars;
  unsigned NumRows = Problem.Constraints.size();

  unsigned NumSlacks = 0;
  for (const LpConstraint &C : Problem.Constraints)
    if (C.Kind != LpConstraint::EQ)
      ++NumSlacks;

  std::vector<Int> RowSign(NumRows, 1);
  std::vector<bool> NeedsArtificial(NumRows, true);
  unsigned NumArtificials = 0;
  for (unsigned R = 0; R != NumRows; ++R) {
    const LpConstraint &C = Problem.Constraints[R];
    Int Rhs = checkedNeg(C.Constant);
    if (Rhs < 0)
      RowSign[R] = -1;
    if (C.Kind != LpConstraint::EQ) {
      Int SlackSign =
          checkedMul(RowSign[R], C.Kind == LpConstraint::GE ? -1 : 1);
      NeedsArtificial[R] = SlackSign != 1;
    }
    if (NeedsArtificial[R])
      ++NumArtificials;
  }

  // Columns: structural | slacks | artificials (only where needed).
  unsigned SlackBase = NumStructural;
  unsigned ArtBase = NumStructural + NumSlacks;
  unsigned NumCols = ArtBase + NumArtificials;

  RefTableau T(NumRows, NumCols);

  unsigned SlackIdx = 0, ArtIdx = 0;
  for (unsigned R = 0; R != NumRows; ++R) {
    const LpConstraint &C = Problem.Constraints[R];
    assert(C.Coeffs.size() == NumStructural && "constraint width mismatch");
    Int Sign = RowSign[R];
    Int Rhs = checkedMul(Sign, checkedNeg(C.Constant));
    for (unsigned V = 0; V != NumStructural; ++V)
      T.at(R, V) = Rational(checkedMul(Sign, C.Coeffs[V]));
    T.rhs(R) = Rational(Rhs);
    if (C.Kind != LpConstraint::EQ) {
      Int SlackSign = (C.Kind == LpConstraint::GE) ? -1 : 1;
      T.at(R, SlackBase + SlackIdx) = Rational(checkedMul(Sign, SlackSign));
      if (!NeedsArtificial[R])
        T.setBasicVar(R, SlackBase + SlackIdx);
      ++SlackIdx;
    }
    if (NeedsArtificial[R]) {
      T.at(R, ArtBase + ArtIdx) = Rational(1);
      T.setBasicVar(R, ArtBase + ArtIdx);
      ++ArtIdx;
    }
  }

  // Phase 1: minimize the sum of artificials (skipped when none).
  if (NumArtificials != 0) {
    for (unsigned A = 0; A != NumArtificials; ++A)
      T.obj(ArtBase + A) = Rational(1);
    T.priceOutBasis();
    MinimizeOutcome Phase1 = T.minimize();
    (void)Phase1; // Bounded below by construction.
    assert(Phase1 == MinimizeOutcome::Optimal && "phase 1 unbounded");
    if (!T.objValue().isZero()) {
      LpResult Result;
      Result.Status = LpResult::Infeasible;
      return Result;
    }
  }

  // Drive any artificial variables out of the basis (degenerate rows).
  for (unsigned R = 0; R != NumRows; ++R) {
    if (T.basicVar(R) < ArtBase)
      continue;
    unsigned Entering = ArtBase;
    for (unsigned C = 0; C != ArtBase; ++C) {
      if (!T.at(R, C).isZero()) {
        Entering = C;
        break;
      }
    }
    if (Entering != ArtBase)
      T.pivot(R, Entering);
  }

  // Phase 2: zero artificial columns so they can never re-enter.
  for (unsigned R = 0; R != NumRows; ++R)
    for (unsigned A = 0; A != NumArtificials; ++A)
      if (T.basicVar(R) != ArtBase + A)
        T.at(R, ArtBase + A) = Rational(0);

  for (unsigned C = 0; C != NumCols; ++C)
    T.obj(C) = Rational(0);
  T.objValue() = Rational(0);
  if (!Problem.Objective.empty()) {
    assert(Problem.Objective.size() == NumStructural &&
           "objective width mismatch");
    for (unsigned V = 0; V != NumStructural; ++V)
      T.obj(V) = Rational(Problem.Objective[V]);
  }
  for (unsigned A = 0; A != NumArtificials; ++A)
    T.obj(ArtBase + A) = Rational(1);
  T.priceOutBasis();

  MinimizeOutcome Phase2 = T.minimize();
  if (Phase2 != MinimizeOutcome::Optimal) {
    LpResult Result;
    Result.Status = LpResult::Unbounded;
    return Result;
  }

  LpResult Result;
  Result.Status = LpResult::Optimal;
  Result.Point.assign(NumStructural, Rational(0));
  for (unsigned R = 0; R != NumRows; ++R)
    if (T.basicVar(R) < NumStructural)
      Result.Point[T.basicVar(R)] = T.rhs(R);
  Result.Value = Rational(Problem.ObjectiveConstant);
  for (unsigned V = 0; V != NumStructural; ++V)
    if (!Problem.Objective.empty() && Problem.Objective[V] != 0)
      Result.Value += Rational(Problem.Objective[V]) * Result.Point[V];
  return Result;
}

/// The original recursive depth-first branch and bound, copying the
/// whole problem and appending a dense bound row at every branch.
class RefBranchAndBound {
public:
  explicit RefBranchAndBound(const IlpProblem &Problem) : Problem(Problem) {}

  IlpResult run() {
    solveNode(Problem.Lp);
    IlpResult Result;
    Result.NodesExplored = Nodes;
    if (!Incumbent) {
      Result.Status = IlpResult::Infeasible;
      return Result;
    }
    Result.Status = IlpResult::Optimal;
    Result.Value = IncumbentValue;
    Result.Point = *Incumbent;
    return Result;
  }

private:
  unsigned findFractional(const std::vector<Rational> &Point) const {
    for (unsigned V = 0, E = Problem.numVars(); V != E; ++V)
      if (Problem.IsInteger[V] && !Point[V].isInteger())
        return V;
    return Problem.numVars();
  }

  void solveNode(const LpProblem &Node) {
    ++Nodes;
    LpResult Relaxed = refSolveLpImpl(Node);
    if (Relaxed.Status == LpResult::Infeasible)
      return;
    if (Relaxed.Status == LpResult::Unbounded)
      raiseError(StatusCode::SolverError, "lp.reference",
                 "unbounded ILP relaxation");
    if (Incumbent && Relaxed.Value >= IncumbentValue)
      return; // Bound: cannot improve on the incumbent.

    unsigned Fractional = findFractional(Relaxed.Point);
    if (Fractional == Problem.numVars()) {
      if (!Incumbent || Relaxed.Value < IncumbentValue) {
        Incumbent = Relaxed.Point;
        IncumbentValue = Relaxed.Value;
      }
      return;
    }

    Int Floor = Relaxed.Point[Fractional].floor();

    // Branch down: x <= floor.
    {
      LpProblem Down = Node;
      IntVector Coeffs(Problem.numVars(), 0);
      Coeffs[Fractional] = 1;
      Down.addLe(std::move(Coeffs), checkedNeg(Floor));
      solveNode(Down);
    }
    // Branch up: x >= floor + 1.
    {
      LpProblem Up = Node;
      IntVector Coeffs(Problem.numVars(), 0);
      Coeffs[Fractional] = 1;
      Up.addGe(std::move(Coeffs), checkedNeg(checkedAdd(Floor, 1)));
      solveNode(Up);
    }
  }

  const IlpProblem &Problem;
  std::optional<std::vector<Rational>> Incumbent;
  Rational IncumbentValue;
  unsigned Nodes = 0;
};

IlpResult refSolveIlpImpl(const IlpProblem &Problem) {
  assert(Problem.IsInteger.size() == Problem.numVars() &&
         "integrality flags out of sync");
  RefBranchAndBound Solver(Problem);
  return Solver.run();
}

} // namespace

LpResult pinj::referenceSolveLp(const LpProblem &Problem) {
  rational::ScopedForceWide Wide;
  return refSolveLpImpl(Problem);
}

IlpResult pinj::referenceSolveIlp(const IlpProblem &Problem) {
  rational::ScopedForceWide Wide;
  return refSolveIlpImpl(Problem);
}

IlpResult
pinj::referenceSolveLexMin(IlpProblem Problem,
                           const std::vector<LexObjective> &Objectives) {
  rational::ScopedForceWide Wide;
  IlpResult Last;
  if (Objectives.empty()) {
    Problem.Lp.Objective.assign(Problem.numVars(), 0);
    return refSolveIlpImpl(Problem);
  }

  unsigned TotalNodes = 0;
  for (const LexObjective &Level : Objectives) {
    assert(Level.Coeffs.size() == Problem.numVars() &&
           "objective width mismatch");
    Problem.Lp.Objective = Level.Coeffs;
    Last = refSolveIlpImpl(Problem);
    TotalNodes += Last.NodesExplored;
    if (!Last.isOptimal()) {
      Last.NodesExplored = TotalNodes;
      return Last;
    }
    // Pin this level at its optimum: q * (c . x) == p for Value == p/q.
    Int P = Last.Value.numerator();
    Int Q = Last.Value.denominator();
    IntVector Pinned(Problem.numVars(), 0);
    for (unsigned V = 0, E = Problem.numVars(); V != E; ++V)
      Pinned[V] = checkedMul(Q, Level.Coeffs[V]);
    Problem.Lp.addEq(std::move(Pinned), checkedNeg(P));
  }
  Last.NodesExplored = TotalNodes;
  return Last;
}
