//===- lp/Ilp.cpp ---------------------------------------------------------===//

#include "lp/Ilp.h"

#include "lp/Budget.h"
#include "obs/Metrics.h"
#include "support/FailPoint.h"
#include "support/Status.h"

#include <algorithm>
#include <optional>

using namespace pinj;

namespace {

/// Depth-first branch and bound, driven by an explicit worklist instead
/// of recursion (deep branching chains used to blow the call stack) and
/// branching by appending single-variable bound rows to a shared path
/// instead of copying the whole problem per node. The node visit order,
/// pruning decisions, and every LP relaxation are identical to the old
/// recursive version: PathRows holds the rows of the current node's
/// root-to-node path, and solveLpExt solves base + path exactly as the
/// old code solved its copied-and-extended problem.
class BranchAndBound {
public:
  explicit BranchAndBound(const IlpProblem &Problem) : Problem(Problem) {}

  IlpResult run() {
    // Each work item is a node, described by the path length of its
    // parent plus the one bound row the branch adds. Pushing the up
    // branch before the down branch pops them in the recursion's order.
    struct WorkItem {
      unsigned Depth; ///< Path rows before this node's own row.
      LpConstraint Row;
      bool HasRow;
    };
    std::vector<WorkItem> Work;
    Work.push_back({0, LpConstraint(), false});

    while (!Work.empty() && !Exhausted) {
      WorkItem Item = std::move(Work.back());
      Work.pop_back();
      PathRows.resize(Item.Depth);
      if (Item.HasRow)
        PathRows.push_back(std::move(Item.Row));

      if (!budget::chargeNode()) {
        Exhausted = true;
        break;
      }
      ++Nodes;
      MaxDepth = std::max(MaxDepth,
                          static_cast<unsigned>(PathRows.size()));
      LpResult Relaxed = solveLpExt(Problem.Lp, PathRows);
      if (Relaxed.Status == LpResult::BudgetExceeded) {
        Exhausted = true;
        break;
      }
      if (Relaxed.Status == LpResult::Infeasible)
        continue;
      // An unbounded relaxation cannot be pruned; in this project
      // objectives are sums of nonnegative variables, so this indicates
      // a misuse.
      if (Relaxed.Status == LpResult::Unbounded)
        raiseError(StatusCode::SolverError, "lp.ilp",
                   "unbounded ILP relaxation");
      if (Incumbent && Relaxed.Value >= IncumbentValue) {
        ++Pruned;
        continue; // Bound: cannot improve on the incumbent.
      }

      unsigned Fractional = findFractional(Relaxed.Point);
      if (Fractional == Problem.numVars()) {
        // Integral solution; becomes the new incumbent.
        if (!Incumbent || Relaxed.Value < IncumbentValue) {
          Incumbent = Relaxed.Point;
          IncumbentValue = Relaxed.Value;
          ++IncumbentUpdates;
        }
        continue;
      }

      Int Floor = Relaxed.Point[Fractional].floor();
      unsigned ChildDepth = PathRows.size();
      // Branch up: x >= floor + 1 (popped second).
      {
        IntVector Coeffs(Problem.numVars(), 0);
        Coeffs[Fractional] = 1;
        Work.push_back({ChildDepth,
                        LpConstraint(std::move(Coeffs),
                                     checkedNeg(checkedAdd(Floor, 1)),
                                     LpConstraint::GE),
                        true});
      }
      // Branch down: x <= floor (popped first).
      {
        IntVector Coeffs(Problem.numVars(), 0);
        Coeffs[Fractional] = 1;
        Work.push_back({ChildDepth,
                        LpConstraint(std::move(Coeffs), checkedNeg(Floor),
                                     LpConstraint::LE),
                        true});
      }
    }

    IlpResult Result;
    Result.NodesExplored = Nodes;
    Result.NodesPruned = Pruned;
    Result.IncumbentUpdates = IncumbentUpdates;
    Result.MaxDepth = MaxDepth;
    if (Exhausted) {
      // The search stopped early: an incumbent (if any) is feasible but
      // unproven, and the absence of one proves nothing.
      Result.Status = IlpResult::BudgetExceeded;
      if (Incumbent) {
        Result.Value = IncumbentValue;
        Result.Point = *Incumbent;
      }
      return Result;
    }
    if (!Incumbent) {
      Result.Status = IlpResult::Infeasible;
      return Result;
    }
    Result.Status = IlpResult::Optimal;
    Result.Value = IncumbentValue;
    Result.Point = *Incumbent;
    return Result;
  }

private:
  /// \returns the index of an integer variable with fractional value, or
  /// numVars() when the point is integral on all integer variables.
  unsigned findFractional(const std::vector<Rational> &Point) const {
    for (unsigned V = 0, E = Problem.numVars(); V != E; ++V)
      if (Problem.IsInteger[V] && !Point[V].isInteger())
        return V;
    return Problem.numVars();
  }

  const IlpProblem &Problem;
  std::vector<LpConstraint> PathRows;
  std::optional<std::vector<Rational>> Incumbent;
  Rational IncumbentValue;
  unsigned Nodes = 0;
  unsigned Pruned = 0;
  unsigned IncumbentUpdates = 0;
  unsigned MaxDepth = 0;
  bool Exhausted = false;
};

} // namespace

IlpResult pinj::solveIlp(const IlpProblem &Problem) {
  assert(Problem.IsInteger.size() == Problem.numVars() &&
         "integrality flags out of sync");
  static obs::Counter &Solves = obs::metrics().counter("lp.ilp_solves");
  static obs::Counter &Failures = obs::metrics().counter("lp.ilp_failures");
  static obs::Counter &Nodes = obs::metrics().counter("lp.ilp_nodes");
  static obs::Histogram &NodesPerSolve =
      obs::metrics().histogram("lp.ilp_nodes_per_solve");
  static obs::Counter &PrunedTotal =
      obs::metrics().counter("lp.bnb_pruned");
  static obs::Counter &IncumbentTotal =
      obs::metrics().counter("lp.bnb_incumbent_updates");
  static obs::Histogram &MaxDepthPerSolve =
      obs::metrics().histogram("lp.bnb_max_depth");
  Solves.inc();
  failpoint::hit("lp.ilp");
  BranchAndBound Solver(Problem);
  IlpResult Result = Solver.run();
  if (!Result.isOptimal())
    Failures.inc();
  Nodes.add(Result.NodesExplored);
  NodesPerSolve.observe(Result.NodesExplored);
  PrunedTotal.add(Result.NodesPruned);
  IncumbentTotal.add(Result.IncumbentUpdates);
  MaxDepthPerSolve.observe(Result.MaxDepth);
  return Result;
}
