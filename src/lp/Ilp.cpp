//===- lp/Ilp.cpp ---------------------------------------------------------===//

#include "lp/Ilp.h"

#include "lp/Budget.h"
#include "obs/Metrics.h"
#include "support/FailPoint.h"
#include "support/Status.h"

#include <optional>

using namespace pinj;

namespace {

/// Depth-first branch and bound state.
class BranchAndBound {
public:
  explicit BranchAndBound(const IlpProblem &Problem) : Problem(Problem) {}

  IlpResult run() {
    solveNode(Problem.Lp);
    IlpResult Result;
    Result.NodesExplored = Nodes;
    if (Exhausted) {
      // The search stopped early: an incumbent (if any) is feasible but
      // unproven, and the absence of one proves nothing.
      Result.Status = IlpResult::BudgetExceeded;
      if (Incumbent) {
        Result.Value = IncumbentValue;
        Result.Point = *Incumbent;
      }
      return Result;
    }
    if (!Incumbent) {
      Result.Status = IlpResult::Infeasible;
      return Result;
    }
    Result.Status = IlpResult::Optimal;
    Result.Value = IncumbentValue;
    Result.Point = *Incumbent;
    return Result;
  }

private:
  /// \returns the index of an integer variable with fractional value, or
  /// numVars() when the point is integral on all integer variables.
  unsigned findFractional(const std::vector<Rational> &Point) const {
    for (unsigned V = 0, E = Problem.numVars(); V != E; ++V)
      if (Problem.IsInteger[V] && !Point[V].isInteger())
        return V;
    return Problem.numVars();
  }

  void solveNode(const LpProblem &Node) {
    if (Exhausted)
      return;
    if (!budget::chargeNode()) {
      Exhausted = true;
      return;
    }
    ++Nodes;
    LpResult Relaxed = solveLp(Node);
    if (Relaxed.Status == LpResult::BudgetExceeded) {
      Exhausted = true;
      return;
    }
    if (Relaxed.Status == LpResult::Infeasible)
      return;
    // An unbounded relaxation cannot be pruned; in this project objectives
    // are sums of nonnegative variables, so this indicates a misuse.
    if (Relaxed.Status == LpResult::Unbounded)
      raiseError(StatusCode::SolverError, "lp.ilp",
                 "unbounded ILP relaxation");
    if (Incumbent && Relaxed.Value >= IncumbentValue)
      return; // Bound: cannot improve on the incumbent.

    unsigned Fractional = findFractional(Relaxed.Point);
    if (Fractional == Problem.numVars()) {
      // Integral solution; becomes the new incumbent.
      if (!Incumbent || Relaxed.Value < IncumbentValue) {
        Incumbent = Relaxed.Point;
        IncumbentValue = Relaxed.Value;
      }
      return;
    }

    Int Floor = Relaxed.Point[Fractional].floor();

    // Branch down: x <= floor.
    {
      LpProblem Down = Node;
      IntVector Coeffs(Problem.numVars(), 0);
      Coeffs[Fractional] = 1;
      Down.addLe(std::move(Coeffs), checkedNeg(Floor));
      solveNode(Down);
    }
    // Branch up: x >= floor + 1.
    {
      LpProblem Up = Node;
      IntVector Coeffs(Problem.numVars(), 0);
      Coeffs[Fractional] = 1;
      Up.addGe(std::move(Coeffs), checkedNeg(checkedAdd(Floor, 1)));
      solveNode(Up);
    }
  }

  const IlpProblem &Problem;
  std::optional<std::vector<Rational>> Incumbent;
  Rational IncumbentValue;
  unsigned Nodes = 0;
  bool Exhausted = false;
};

} // namespace

IlpResult pinj::solveIlp(const IlpProblem &Problem) {
  assert(Problem.IsInteger.size() == Problem.numVars() &&
         "integrality flags out of sync");
  static obs::Counter &Solves = obs::metrics().counter("lp.ilp_solves");
  static obs::Counter &Failures = obs::metrics().counter("lp.ilp_failures");
  static obs::Counter &Nodes = obs::metrics().counter("lp.ilp_nodes");
  static obs::Histogram &NodesPerSolve =
      obs::metrics().histogram("lp.ilp_nodes_per_solve");
  Solves.inc();
  failpoint::hit("lp.ilp");
  BranchAndBound Solver(Problem);
  IlpResult Result = Solver.run();
  if (!Result.isOptimal())
    Failures.inc();
  Nodes.add(Result.NodesExplored);
  NodesPerSolve.observe(Result.NodesExplored);
  return Result;
}
