//===- lp/Reference.h - Reference (slow) exact solvers ----------*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The textbook solver stack preserved verbatim as a differential
/// oracle: dense vector-of-vectors tableau, always-128-bit rational
/// arithmetic (ScopedForceWide), full-problem copies at every
/// branch-and-bound node, recursion instead of a worklist, no warm
/// starts, a from-scratch phase 1 at every lexicographic level. The
/// production solvers in Simplex/Ilp/LexMin must match it on status,
/// value, and point; tests/lp_perf_test.cpp and bench/bench_lp.cpp
/// enforce that on random and scheduler-derived problems.
///
/// The reference path charges no budgets, bumps no metrics, and hits no
/// fail-points: it is an oracle, not a production code path.
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_LP_REFERENCE_H
#define POLYINJECT_LP_REFERENCE_H

#include "lp/LexMin.h"

namespace pinj {

/// Two-phase primal simplex, original implementation.
LpResult referenceSolveLp(const LpProblem &Problem);

/// Recursive branch and bound over referenceSolveLp.
IlpResult referenceSolveIlp(const IlpProblem &Problem);

/// Level-by-level lexicographic minimization over referenceSolveIlp.
IlpResult referenceSolveLexMin(IlpProblem Problem,
                               const std::vector<LexObjective> &Objectives);

} // namespace pinj

#endif // POLYINJECT_LP_REFERENCE_H
