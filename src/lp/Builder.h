//===- lp/Builder.h - Incremental ILP construction --------------*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds mixed ILPs incrementally: variables are allocated on demand
/// (the Farkas builder introduces multipliers as it processes dependence
/// relations) and constraints are collected sparsely, then densified.
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_LP_BUILDER_H
#define POLYINJECT_LP_BUILDER_H

#include "lp/LexMin.h"

#include <string>

namespace pinj {

/// A sparse linear form over builder variables plus a constant.
struct SparseForm {
  std::vector<std::pair<unsigned, Int>> Terms; ///< (variable, coefficient)
  Int Constant = 0;

  void addTerm(unsigned Var, Int Coeff) {
    if (Coeff != 0)
      Terms.emplace_back(Var, Coeff);
  }
  void addConstant(Int C) { Constant = checkedAdd(Constant, C); }

  /// Adds \p Scale times \p Other into this form.
  void addScaled(const SparseForm &Other, Int Scale);

  /// Densifies into a row of width \p NumVars, accumulating duplicate
  /// terms.
  IntVector densify(unsigned NumVars) const;
};

/// Incremental mixed-ILP builder with named variables.
class IlpBuilder {
public:
  enum RowKind { RowGe, RowEq, RowLe };

  /// A captured slice of builder state: the variables and rows appended
  /// after a pair of marks. Replaying a block into a later builder state
  /// allocates fresh copies of its variables and re-appends its rows
  /// with every reference to a block-local variable rebased, so a block
  /// is reusable wherever the variables below VarBase keep their ids
  /// (the Farkas cache relies on makeDimIlp allocating the statement
  /// variables identically for every dimension).
  struct ConstraintBlock {
    unsigned VarBase = 0;
    std::vector<std::pair<std::string, bool>> Vars; ///< (name, integer)
    std::vector<std::pair<SparseForm, RowKind>> Rows;
  };

  /// Allocates a variable; all variables are nonnegative. Integer
  /// variables participate in branch and bound.
  unsigned addVar(std::string Name, bool IsInteger);

  unsigned numVars() const { return Names.size(); }
  const std::string &varName(unsigned Var) const { return Names[Var]; }

  /// Adds Form >= 0.
  void addGe(const SparseForm &Form) { Rows.push_back({Form, RowGe}); }
  /// Adds Form == 0.
  void addEq(const SparseForm &Form) { Rows.push_back({Form, RowEq}); }
  /// Adds Form <= 0.
  void addLe(const SparseForm &Form) { Rows.push_back({Form, RowLe}); }
  /// Adds Var <= Bound.
  void addUpperBound(unsigned Var, Int Bound);

  /// Appends a lexicographic minimization level.
  void addObjective(const SparseForm &Form) { Objectives.push_back(Form); }

  unsigned numConstraints() const { return Rows.size(); }

  /// Removes constraints and objectives added after the marks, enabling
  /// cheap push/pop of constraint groups during scheduler backtracking.
  void truncate(unsigned NumRows, unsigned NumObjectives);

  /// Captures the variables and constraint rows appended since the
  /// marks (typically taken just before a constraint-group builder ran).
  ConstraintBlock captureBlock(unsigned VarMark, unsigned RowMark) const;

  /// Re-appends a captured block: allocates fresh variables for the
  /// block's own and rebases their row references; rows may also
  /// reference variables below the block's VarBase, which must still
  /// mean the same thing in this builder.
  void replayBlock(const ConstraintBlock &Block);

  /// Densifies the collected rows and objectives into a solver-ready
  /// problem; solve() is materialize() followed by solveLexMin.
  std::pair<IlpProblem, std::vector<LexObjective>> materialize() const;

  /// Solves lexicographic minimization over the collected objectives.
  IlpResult solve() const;

private:
  struct Row {
    SparseForm Form;
    RowKind Kind;
  };

  std::vector<std::string> Names;
  std::vector<bool> Integrality;
  std::vector<Row> Rows;
  std::vector<SparseForm> Objectives;
};

} // namespace pinj

#endif // POLYINJECT_LP_BUILDER_H
