//===- lp/Builder.h - Incremental ILP construction --------------*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds mixed ILPs incrementally: variables are allocated on demand
/// (the Farkas builder introduces multipliers as it processes dependence
/// relations) and constraints are collected sparsely, then densified.
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_LP_BUILDER_H
#define POLYINJECT_LP_BUILDER_H

#include "lp/LexMin.h"

#include <string>

namespace pinj {

/// A sparse linear form over builder variables plus a constant.
struct SparseForm {
  std::vector<std::pair<unsigned, Int>> Terms; ///< (variable, coefficient)
  Int Constant = 0;

  void addTerm(unsigned Var, Int Coeff) {
    if (Coeff != 0)
      Terms.emplace_back(Var, Coeff);
  }
  void addConstant(Int C) { Constant = checkedAdd(Constant, C); }

  /// Adds \p Scale times \p Other into this form.
  void addScaled(const SparseForm &Other, Int Scale);

  /// Densifies into a row of width \p NumVars, accumulating duplicate
  /// terms.
  IntVector densify(unsigned NumVars) const;
};

/// Incremental mixed-ILP builder with named variables.
class IlpBuilder {
public:
  /// Allocates a variable; all variables are nonnegative. Integer
  /// variables participate in branch and bound.
  unsigned addVar(std::string Name, bool IsInteger);

  unsigned numVars() const { return Names.size(); }
  const std::string &varName(unsigned Var) const { return Names[Var]; }

  /// Adds Form >= 0.
  void addGe(const SparseForm &Form) { Rows.push_back({Form, RowGe}); }
  /// Adds Form == 0.
  void addEq(const SparseForm &Form) { Rows.push_back({Form, RowEq}); }
  /// Adds Form <= 0.
  void addLe(const SparseForm &Form) { Rows.push_back({Form, RowLe}); }
  /// Adds Var <= Bound.
  void addUpperBound(unsigned Var, Int Bound);

  /// Appends a lexicographic minimization level.
  void addObjective(const SparseForm &Form) { Objectives.push_back(Form); }

  unsigned numConstraints() const { return Rows.size(); }

  /// Removes constraints and objectives added after the marks, enabling
  /// cheap push/pop of constraint groups during scheduler backtracking.
  void truncate(unsigned NumRows, unsigned NumObjectives);

  /// Solves lexicographic minimization over the collected objectives.
  IlpResult solve() const;

private:
  enum RowKind { RowGe, RowEq, RowLe };
  struct Row {
    SparseForm Form;
    RowKind Kind;
  };

  std::vector<std::string> Names;
  std::vector<bool> Integrality;
  std::vector<Row> Rows;
  std::vector<SparseForm> Objectives;
};

} // namespace pinj

#endif // POLYINJECT_LP_BUILDER_H
