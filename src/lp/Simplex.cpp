//===- lp/Simplex.cpp -----------------------------------------------------===//

#include "lp/Simplex.h"

#include "lp/Budget.h"
#include "lp/Tableau.h"
#include "obs/Metrics.h"
#include "support/FailPoint.h"

using namespace pinj;

namespace {
thread_local std::uint64_t TlPivots = 0;
} // namespace

std::uint64_t pinj::threadSimplexPivots() { return TlPivots; }
void pinj::addThreadSimplexPivots(std::uint64_t N) { TlPivots += N; }

void LpProblem::addUpperBound(unsigned Var, Int Bound) {
  assert(Var < NumVars && "bounded variable out of range");
  IntVector Coeffs(NumVars, 0);
  Coeffs[Var] = 1;
  addLe(std::move(Coeffs), checkedNeg(Bound));
}

LpResult pinj::solveLpExt(const LpProblem &Problem,
                          const std::vector<LpConstraint> &ExtraRows) {
  static obs::Counter &SimplexSolves =
      obs::metrics().counter("lp.simplex_solves");
  static obs::Counter &SimplexPivots =
      obs::metrics().counter("lp.simplex_pivots");
  static obs::Histogram &PivotsPerSolve =
      obs::metrics().histogram("lp.pivots_per_solve");
  SimplexSolves.inc();
  failpoint::hit("lp.simplex");

  // One scratch tableau per thread: the branch-and-bound hot path
  // re-solves hundreds of closely related problems, and reusing the
  // flat buffer makes each build allocation-free in the steady state.
  static thread_local SimplexTableau T;
  T.build(Problem, ExtraRows);
  SimplexTableau::Outcome Outcome = T.solveTwoPhase(Problem.Objective);
  SimplexPivots.add(T.pivots());
  PivotsPerSolve.observe(T.pivots());
  TlPivots += T.pivots();

  LpResult Result;
  switch (Outcome) {
  case SimplexTableau::Outcome::Budget:
    Result.Status = LpResult::BudgetExceeded;
    return Result;
  case SimplexTableau::Outcome::Infeasible:
    Result.Status = LpResult::Infeasible;
    return Result;
  case SimplexTableau::Outcome::Unbounded:
    Result.Status = LpResult::Unbounded;
    return Result;
  case SimplexTableau::Outcome::Optimal:
    break;
  }

  Result.Status = LpResult::Optimal;
  T.extractPoint(Result.Point);
  // The tableau tracks -(objective shift); recompute the value directly.
  Result.Value = Rational(Problem.ObjectiveConstant);
  for (unsigned V = 0, E = Problem.NumVars; V != E; ++V)
    if (!Problem.Objective.empty() && Problem.Objective[V] != 0)
      Result.Value += Rational(Problem.Objective[V]) * Result.Point[V];
  return Result;
}

LpResult pinj::solveLp(const LpProblem &Problem) {
  return solveLpExt(Problem, {});
}
