//===- lp/Simplex.cpp -----------------------------------------------------===//

#include "lp/Simplex.h"

#include "lp/Budget.h"
#include "obs/Metrics.h"
#include "support/FailPoint.h"

using namespace pinj;

void LpProblem::addUpperBound(unsigned Var, Int Bound) {
  assert(Var < NumVars && "bounded variable out of range");
  IntVector Coeffs(NumVars, 0);
  Coeffs[Var] = 1;
  addLe(std::move(Coeffs), checkedNeg(Bound));
}

namespace {

/// Outcome of a tableau optimization run.
enum class MinimizeOutcome { Optimal, Unbounded, Budget };

/// A classic dense simplex tableau over exact rationals.
///
/// Layout: Rows constraints (equalities with nonnegative right-hand side)
/// over Cols variables; column Cols holds the right-hand side. The
/// objective row is stored separately. Basis[r] is the basic variable of
/// row r.
class Tableau {
public:
  Tableau(unsigned NumRows, unsigned NumCols)
      : Rows(NumRows), Cols(NumCols),
        Cells(NumRows, std::vector<Rational>(NumCols + 1, Rational(0))),
        ObjRow(NumCols + 1, Rational(0)), Basis(NumRows, 0) {}

  unsigned numRows() const { return Rows; }
  unsigned numCols() const { return Cols; }

  Rational &at(unsigned R, unsigned C) { return Cells[R][C]; }
  Rational &rhs(unsigned R) { return Cells[R][Cols]; }
  Rational &obj(unsigned C) { return ObjRow[C]; }
  Rational &objValue() { return ObjRow[Cols]; }
  unsigned basicVar(unsigned R) const { return Basis[R]; }
  void setBasicVar(unsigned R, unsigned Var) { Basis[R] = Var; }

  /// Makes the objective row consistent with the current basis (reduced
  /// costs zero on basic columns).
  void priceOutBasis() {
    for (unsigned R = 0; R != Rows; ++R) {
      unsigned BV = Basis[R];
      if (ObjRow[BV].isZero())
        continue;
      Rational Factor = ObjRow[BV];
      for (unsigned C = 0; C <= Cols; ++C)
        ObjRow[C] -= Factor * Cells[R][C];
    }
  }

  /// Runs the primal simplex: Dantzig's rule (most negative reduced
  /// cost, usually few pivots) with a switch to Bland's rule after a
  /// long degenerate stretch to guarantee termination. Every pivot is
  /// charged to the active SolverBudget; an exhausted budget stops the
  /// run mid-optimization.
  MinimizeOutcome minimize() {
    unsigned DegenerateStreak = 0;
    const unsigned BlandThreshold = 2 * (Rows + Cols) + 16;
    const bool Budgeted = budget::active();
    for (;;) {
      bool UseBland = DegenerateStreak > BlandThreshold;
      unsigned Entering = Cols;
      for (unsigned C = 0; C != Cols; ++C) {
        if (!ObjRow[C].isNegative())
          continue;
        if (UseBland) {
          Entering = C; // Lowest index.
          break;
        }
        if (Entering == Cols || ObjRow[C] < ObjRow[Entering])
          Entering = C; // Most negative reduced cost.
      }
      if (Entering == Cols)
        return MinimizeOutcome::Optimal;

      // Ratio test; Bland tie-break on the basic variable index.
      unsigned Leaving = Rows;
      Rational BestRatio;
      for (unsigned R = 0; R != Rows; ++R) {
        if (!Cells[R][Entering].isPositive())
          continue;
        Rational Ratio = Cells[R][Cols] / Cells[R][Entering];
        if (Leaving == Rows || Ratio < BestRatio ||
            (Ratio == BestRatio && Basis[R] < Basis[Leaving])) {
          Leaving = R;
          BestRatio = Ratio;
        }
      }
      if (Leaving == Rows)
        return MinimizeOutcome::Unbounded;
      if (BestRatio.isZero())
        ++DegenerateStreak; // No objective progress: possible cycling.
      else
        DegenerateStreak = 0;
      if (Budgeted && (!budget::chargePivot() || budget::deadlineExpired()))
        return MinimizeOutcome::Budget;
      pivot(Leaving, Entering);
    }
  }

  unsigned pivots() const { return PivotCount; }

  void pivot(unsigned PivotRow, unsigned PivotCol) {
    ++PivotCount;
    Rational Pivot = Cells[PivotRow][PivotCol];
    assert(!Pivot.isZero() && "pivot on zero entry");
    for (unsigned C = 0; C <= Cols; ++C)
      Cells[PivotRow][C] /= Pivot;
    for (unsigned R = 0; R != Rows; ++R) {
      if (R == PivotRow || Cells[R][PivotCol].isZero())
        continue;
      Rational Factor = Cells[R][PivotCol];
      for (unsigned C = 0; C <= Cols; ++C)
        Cells[R][C] -= Factor * Cells[PivotRow][C];
    }
    if (!ObjRow[PivotCol].isZero()) {
      Rational Factor = ObjRow[PivotCol];
      for (unsigned C = 0; C <= Cols; ++C)
        ObjRow[C] -= Factor * Cells[PivotRow][C];
    }
    Basis[PivotRow] = PivotCol;
  }

private:
  unsigned Rows;
  unsigned Cols;
  std::vector<std::vector<Rational>> Cells;
  std::vector<Rational> ObjRow;
  std::vector<unsigned> Basis;
  unsigned PivotCount = 0;
};

} // namespace

LpResult pinj::solveLp(const LpProblem &Problem) {
  static obs::Counter &SimplexSolves =
      obs::metrics().counter("lp.simplex_solves");
  static obs::Counter &SimplexPivots =
      obs::metrics().counter("lp.simplex_pivots");
  SimplexSolves.inc();
  failpoint::hit("lp.simplex");

  unsigned NumStructural = Problem.NumVars;
  unsigned NumRows = Problem.Constraints.size();

  // Count slack variables (one per inequality) and find the rows whose
  // slack can serve as the initial basis: after normalizing the
  // right-hand side to be nonnegative, a +1 slack coefficient gives a
  // feasible basic variable, so no artificial is needed for the row.
  unsigned NumSlacks = 0;
  for (const LpConstraint &C : Problem.Constraints)
    if (C.Kind != LpConstraint::EQ)
      ++NumSlacks;

  std::vector<Int> RowSign(NumRows, 1);
  std::vector<bool> NeedsArtificial(NumRows, true);
  unsigned NumArtificials = 0;
  for (unsigned R = 0; R != NumRows; ++R) {
    const LpConstraint &C = Problem.Constraints[R];
    Int Rhs = checkedNeg(C.Constant);
    if (Rhs < 0)
      RowSign[R] = -1;
    if (C.Kind != LpConstraint::EQ) {
      Int SlackSign =
          checkedMul(RowSign[R], C.Kind == LpConstraint::GE ? -1 : 1);
      NeedsArtificial[R] = SlackSign != 1;
    }
    if (NeedsArtificial[R])
      ++NumArtificials;
  }

  // Columns: structural | slacks | artificials (only where needed).
  unsigned SlackBase = NumStructural;
  unsigned ArtBase = NumStructural + NumSlacks;
  unsigned NumCols = ArtBase + NumArtificials;

  Tableau T(NumRows, NumCols);

  unsigned SlackIdx = 0, ArtIdx = 0;
  for (unsigned R = 0; R != NumRows; ++R) {
    const LpConstraint &C = Problem.Constraints[R];
    assert(C.Coeffs.size() == NumStructural && "constraint width mismatch");
    // Constraint semantics: Coeffs.x + Constant (kind) 0, rewritten as
    // Coeffs.x (kind) -Constant, normalized to a nonnegative RHS.
    Int Sign = RowSign[R];
    Int Rhs = checkedMul(Sign, checkedNeg(C.Constant));
    for (unsigned V = 0; V != NumStructural; ++V)
      T.at(R, V) = Rational(checkedMul(Sign, C.Coeffs[V]));
    T.rhs(R) = Rational(Rhs);
    if (C.Kind != LpConstraint::EQ) {
      // GE becomes Coeffs.x - s = rhs (slack coeff -1), LE gets +1;
      // row negation flips the slack sign too.
      Int SlackSign = (C.Kind == LpConstraint::GE) ? -1 : 1;
      T.at(R, SlackBase + SlackIdx) = Rational(checkedMul(Sign, SlackSign));
      if (!NeedsArtificial[R])
        T.setBasicVar(R, SlackBase + SlackIdx);
      ++SlackIdx;
    }
    if (NeedsArtificial[R]) {
      T.at(R, ArtBase + ArtIdx) = Rational(1);
      T.setBasicVar(R, ArtBase + ArtIdx);
      ++ArtIdx;
    }
  }

  // Phase 1: minimize the sum of artificials (skipped when none).
  if (NumArtificials != 0) {
    for (unsigned A = 0; A != NumArtificials; ++A)
      T.obj(ArtBase + A) = Rational(1);
    T.priceOutBasis();
    MinimizeOutcome Phase1 = T.minimize();
    // The phase-1 objective is bounded below by construction, so the
    // only non-optimal outcome is an exhausted budget.
    if (Phase1 != MinimizeOutcome::Optimal) {
      SimplexPivots.add(T.pivots());
      LpResult Result;
      Result.Status = LpResult::BudgetExceeded;
      return Result;
    }
    if (!T.objValue().isZero()) {
      // Nonzero phase-1 optimum (objValue holds -(sum of artificials)).
      SimplexPivots.add(T.pivots());
      LpResult Result;
      Result.Status = LpResult::Infeasible;
      return Result;
    }
  }

  // Drive any artificial variables out of the basis (degenerate rows).
  for (unsigned R = 0; R != NumRows; ++R) {
    if (T.basicVar(R) < ArtBase)
      continue;
    unsigned Entering = ArtBase;
    for (unsigned C = 0; C != ArtBase; ++C) {
      if (!T.at(R, C).isZero()) {
        Entering = C;
        break;
      }
    }
    if (Entering != ArtBase)
      T.pivot(R, Entering);
    // Otherwise the row is all-zero over real columns: redundant; its
    // artificial stays basic at value zero, which is harmless as long as
    // artificial columns can never re-enter (handled below).
  }

  // Phase 2: restore the real objective. Artificial columns are excluded
  // from entering by forcing a large positive reduced cost... instead we
  // zero their columns so Bland's rule never selects them.
  for (unsigned R = 0; R != NumRows; ++R)
    for (unsigned A = 0; A != NumArtificials; ++A)
      if (T.basicVar(R) != ArtBase + A)
        T.at(R, ArtBase + A) = Rational(0);

  for (unsigned C = 0; C != NumCols; ++C)
    T.obj(C) = Rational(0);
  T.objValue() = Rational(0);
  if (!Problem.Objective.empty()) {
    assert(Problem.Objective.size() == NumStructural &&
           "objective width mismatch");
    for (unsigned V = 0; V != NumStructural; ++V)
      T.obj(V) = Rational(Problem.Objective[V]);
  }
  // Keep artificials non-entering: give them +1 reduced cost pre-pricing.
  for (unsigned A = 0; A != NumArtificials; ++A)
    T.obj(ArtBase + A) = Rational(1);
  T.priceOutBasis();
  // After pricing, basic artificial columns have zero reduced cost and
  // nonbasic ones keep +1, so they never enter.

  MinimizeOutcome Phase2 = T.minimize();
  if (Phase2 != MinimizeOutcome::Optimal) {
    SimplexPivots.add(T.pivots());
    LpResult Result;
    Result.Status = Phase2 == MinimizeOutcome::Unbounded
                        ? LpResult::Unbounded
                        : LpResult::BudgetExceeded;
    return Result;
  }
  SimplexPivots.add(T.pivots());

  LpResult Result;
  Result.Status = LpResult::Optimal;
  Result.Point.assign(NumStructural, Rational(0));
  for (unsigned R = 0; R != NumRows; ++R)
    if (T.basicVar(R) < NumStructural)
      Result.Point[T.basicVar(R)] = T.rhs(R);
  // The tableau tracks -(objective shift); recompute the value directly.
  Result.Value = Rational(Problem.ObjectiveConstant);
  for (unsigned V = 0; V != NumStructural; ++V)
    if (!Problem.Objective.empty() && Problem.Objective[V] != 0)
      Result.Value += Rational(Problem.Objective[V]) * Result.Point[V];
  return Result;
}
