//===- lp/Budget.cpp ------------------------------------------------------===//

#include "lp/Budget.h"

#include "obs/Metrics.h"

using namespace pinj;
using namespace pinj::budget;

namespace {
using Clock = std::chrono::steady_clock;
} // namespace

struct pinj::budget::BudgetState {
  BudgetState *Parent = nullptr;
  std::uint64_t PivotsLeft = 0; // meaningful only when HasPivots
  std::uint64_t NodesLeft = 0;  // meaningful only when HasNodes
  Clock::time_point Deadline;   // meaningful only when HasDeadline
  bool HasPivots = false;
  bool HasNodes = false;
  bool HasDeadline = false;
  bool Tripped = false;
  bool DeadlineHit = false;

  // Marks the scope exhausted; the counter fires once per scope so a
  // single budget trip is one lp.budget_exceeded increment no matter how
  // many subsequent charges bounce off it.
  bool trip() {
    if (!Tripped) {
      Tripped = true;
      obs::metrics().counter("lp.budget_exceeded").inc();
    }
    return false;
  }
};

namespace {
thread_local BudgetState *Top = nullptr;
} // namespace

BudgetScope::BudgetScope(const SolverBudget &B) {
  if (B.unlimited())
    return;
  S = new BudgetState();
  S->Parent = Top;
  if (B.MaxPivots > 0) {
    S->HasPivots = true;
    S->PivotsLeft = B.MaxPivots;
  }
  if (B.MaxIlpNodes > 0) {
    S->HasNodes = true;
    S->NodesLeft = B.MaxIlpNodes;
  }
  if (B.WallMs > 0) {
    S->HasDeadline = true;
    S->Deadline = Clock::now() + std::chrono::microseconds(
                                     static_cast<long long>(B.WallMs * 1000));
  }
  Top = S;
}

BudgetScope::~BudgetScope() {
  if (!S)
    return;
  Top = S->Parent;
  delete S;
}

bool BudgetScope::tripped() const { return S && S->Tripped; }

bool pinj::budget::active() { return Top != nullptr; }

bool pinj::budget::chargePivot() {
  bool Ok = true;
  for (BudgetState *S = Top; S; S = S->Parent) {
    if (S->Tripped)
      Ok = false;
    else if (S->HasPivots && S->PivotsLeft-- == 0)
      Ok = S->trip();
  }
  return Ok;
}

bool pinj::budget::chargeNode() {
  bool Ok = true;
  for (BudgetState *S = Top; S; S = S->Parent) {
    if (S->Tripped)
      Ok = false;
    else if (S->HasNodes && S->NodesLeft-- == 0)
      Ok = S->trip();
  }
  return Ok;
}

bool pinj::budget::deadlineExpired() {
  if (!Top)
    return false;
  bool Expired = false;
  Clock::time_point Now = Clock::now();
  for (BudgetState *S = Top; S; S = S->Parent) {
    if (S->DeadlineHit)
      Expired = true;
    else if (S->HasDeadline && Now >= S->Deadline) {
      S->DeadlineHit = true;
      S->trip();
      Expired = true;
    }
  }
  return Expired;
}

bool pinj::budget::anyTripped() {
  for (BudgetState *S = Top; S; S = S->Parent)
    if (S->Tripped)
      return true;
  return false;
}
