//===- lp/LexMin.h - Lexicographic multi-objective ILP ----------*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lexicographic minimization over a sequence of linear objectives, the
/// "minimize_<" operator of paper Eq. (2): minimize the first objective,
/// pin it at its optimum, minimize the next, and so on. The paper's
/// proximity cost uses the isl form f = (sum u_i, w) followed by
/// coefficient-sum tie-breakers; each component is one objective here.
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_LP_LEXMIN_H
#define POLYINJECT_LP_LEXMIN_H

#include "lp/Ilp.h"

namespace pinj {

/// One level of a lexicographic objective: Coeffs . x, minimized.
struct LexObjective {
  IntVector Coeffs;

  explicit LexObjective(IntVector C) : Coeffs(std::move(C)) {}
};

/// Minimizes \p Objectives lexicographically subject to \p Problem.
/// \returns the final optimum; Value holds the last level's value.
IlpResult solveLexMin(IlpProblem Problem,
                      const std::vector<LexObjective> &Objectives);

} // namespace pinj

#endif // POLYINJECT_LP_LEXMIN_H
