//===- lp/Tableau.cpp -----------------------------------------------------===//

#include "lp/Tableau.h"

#include "lp/Budget.h"

using namespace pinj;

void SimplexTableau::build(const LpProblem &Base,
                           const std::vector<LpConstraint> &Extra,
                           unsigned ReserveRows, unsigned ReserveCols) {
  NumStructural = Base.NumVars;
  const unsigned NumBase = Base.Constraints.size();
  const unsigned NumRows = NumBase + Extra.size();
  auto constraintAt = [&](unsigned R) -> const LpConstraint & {
    return R < NumBase ? Base.Constraints[R] : Extra[R - NumBase];
  };

  // Count slack variables (one per inequality) and find the rows whose
  // slack can serve as the initial basis: after normalizing the
  // right-hand side to be nonnegative, a +1 slack coefficient gives a
  // feasible basic variable, so no artificial is needed for the row.
  unsigned NumSlacks = 0;
  for (unsigned R = 0; R != NumRows; ++R)
    if (constraintAt(R).Kind != LpConstraint::EQ)
      ++NumSlacks;

  std::vector<Int> RowSign(NumRows, 1);
  std::vector<bool> NeedsArtificial(NumRows, true);
  unsigned NumArtificials = 0;
  for (unsigned R = 0; R != NumRows; ++R) {
    const LpConstraint &C = constraintAt(R);
    Int Rhs = checkedNeg(C.Constant);
    if (Rhs < 0)
      RowSign[R] = -1;
    if (C.Kind != LpConstraint::EQ) {
      Int SlackSign =
          checkedMul(RowSign[R], C.Kind == LpConstraint::GE ? -1 : 1);
      NeedsArtificial[R] = SlackSign != 1;
    }
    if (NeedsArtificial[R])
      ++NumArtificials;
  }

  // Columns: structural | slacks (row order) | artificials (only where
  // needed) — the reference layout, so exact-mode pivot sequences match.
  const unsigned SlackBase = NumStructural;
  const unsigned ArtBase = NumStructural + NumSlacks;
  const unsigned NumCols = ArtBase + NumArtificials;

  Rows = NumRows;
  Cols = NumCols;
  Stride = NumCols + ReserveCols + 1;
  RowCapacity = NumRows + ReserveRows;
  PivotCount = 0;
  // Every vector is sized to full capacity up front: copies of a warm
  // tableau (branch-and-bound snapshots) must keep the growth room.
  Cells.assign(static_cast<size_t>(RowCapacity) * Stride, Rational(0));
  ObjRow.assign(Stride, Rational(0));
  Basis.assign(RowCapacity, 0);
  ColIsArtificial.assign(Stride - 1, false);
  for (unsigned A = 0; A != NumArtificials; ++A)
    ColIsArtificial[ArtBase + A] = true;

  unsigned SlackIdx = 0, ArtIdx = 0;
  for (unsigned R = 0; R != NumRows; ++R) {
    const LpConstraint &C = constraintAt(R);
    assert(C.Coeffs.size() == NumStructural && "constraint width mismatch");
    // Constraint semantics: Coeffs.x + Constant (kind) 0, rewritten as
    // Coeffs.x (kind) -Constant, normalized to a nonnegative RHS.
    Int Sign = RowSign[R];
    Int RhsVal = checkedMul(Sign, checkedNeg(C.Constant));
    Rational *Rw = row(R);
    for (unsigned V = 0; V != NumStructural; ++V)
      Rw[V] = Rational(checkedMul(Sign, C.Coeffs[V]));
    Rw[Stride - 1] = Rational(RhsVal);
    if (C.Kind != LpConstraint::EQ) {
      // GE becomes Coeffs.x - s = rhs (slack coeff -1), LE gets +1;
      // row negation flips the slack sign too.
      Int SlackSign = (C.Kind == LpConstraint::GE) ? -1 : 1;
      Rw[SlackBase + SlackIdx] = Rational(checkedMul(Sign, SlackSign));
      if (!NeedsArtificial[R])
        Basis[R] = SlackBase + SlackIdx;
      ++SlackIdx;
    }
    if (NeedsArtificial[R]) {
      Rw[ArtBase + ArtIdx] = Rational(1);
      Basis[R] = ArtBase + ArtIdx;
      ++ArtIdx;
    }
  }
}

void SimplexTableau::priceOutBasis() {
  for (unsigned R = 0; R != Rows; ++R) {
    unsigned BV = Basis[R];
    if (ObjRow[BV].isZero())
      continue;
    Rational Factor = ObjRow[BV];
    const Rational *Rw = row(R);
    for (unsigned C = 0; C != Cols; ++C)
      if (!Rw[C].isZero())
        ObjRow[C] -= Factor * Rw[C];
    if (!Rw[Stride - 1].isZero())
      ObjRow[Stride - 1] -= Factor * Rw[Stride - 1];
  }
}

void SimplexTableau::pivot(unsigned PivotRow, unsigned PivotCol) {
  ++PivotCount;
  Rational *PR = row(PivotRow);
  const Rational Pivot = PR[PivotCol];
  assert(!Pivot.isZero() && "pivot on zero entry");
  // Normalize the pivot row (a unit pivot — the common slack case — is
  // already normalized) and record its sparsity pattern; every update
  // below only walks the nonzero pivot-row columns.
  const bool UnitPivot = Pivot == Rational(1);
  NonZeroScratch.clear();
  for (unsigned C = 0; C != Cols; ++C) {
    if (PR[C].isZero())
      continue;
    if (!UnitPivot)
      PR[C] /= Pivot;
    NonZeroScratch.push_back(C);
  }
  if (!PR[Stride - 1].isZero()) {
    if (!UnitPivot)
      PR[Stride - 1] /= Pivot;
    NonZeroScratch.push_back(Stride - 1);
  }
  for (unsigned R = 0; R != Rows; ++R) {
    if (R == PivotRow)
      continue;
    Rational *Rw = row(R);
    if (Rw[PivotCol].isZero())
      continue;
    Rational Factor = Rw[PivotCol];
    for (unsigned C : NonZeroScratch)
      Rw[C] -= Factor * PR[C];
  }
  if (!ObjRow[PivotCol].isZero()) {
    Rational Factor = ObjRow[PivotCol];
    for (unsigned C : NonZeroScratch)
      ObjRow[C] -= Factor * PR[C];
  }
  Basis[PivotRow] = PivotCol;
}

SimplexTableau::Outcome SimplexTableau::minimize() {
  unsigned DegenerateStreak = 0;
  const unsigned BlandThreshold = 2 * (Rows + Cols) + 16;
  const bool Budgeted = budget::active();
  for (;;) {
    bool UseBland = DegenerateStreak > BlandThreshold;
    unsigned Entering = Cols;
    for (unsigned C = 0; C != Cols; ++C) {
      if (!ObjRow[C].isNegative())
        continue;
      if (UseBland) {
        Entering = C; // Lowest index.
        break;
      }
      if (Entering == Cols || ObjRow[C] < ObjRow[Entering])
        Entering = C; // Most negative reduced cost.
    }
    if (Entering == Cols)
      return Outcome::Optimal;

    // Ratio test; Bland tie-break on the basic variable index.
    unsigned Leaving = Rows;
    Rational BestRatio;
    for (unsigned R = 0; R != Rows; ++R) {
      const Rational *Rw = row(R);
      if (!Rw[Entering].isPositive())
        continue;
      Rational Ratio = Rw[Stride - 1] / Rw[Entering];
      if (Leaving == Rows || Ratio < BestRatio ||
          (Ratio == BestRatio && Basis[R] < Basis[Leaving])) {
        Leaving = R;
        BestRatio = Ratio;
      }
    }
    if (Leaving == Rows)
      return Outcome::Unbounded;
    if (BestRatio.isZero())
      ++DegenerateStreak; // No objective progress: possible cycling.
    else
      DegenerateStreak = 0;
    if (Budgeted && (!budget::chargePivot() || budget::deadlineExpired()))
      return Outcome::Budget;
    pivot(Leaving, Entering);
  }
}

SimplexTableau::Outcome SimplexTableau::solveTwoPhase(
    const IntVector &Objective) {
  // Recover the build() column partition: artificials are the trailing
  // flagged columns (solveTwoPhase runs before any warm growth).
  unsigned ArtBase = Cols;
  unsigned NumArtificials = 0;
  for (unsigned C = Cols; C != 0; --C) {
    if (!ColIsArtificial[C - 1])
      break;
    ArtBase = C - 1;
    ++NumArtificials;
  }

  // Phase 1: minimize the sum of artificials (skipped when none).
  if (NumArtificials != 0) {
    for (unsigned A = 0; A != NumArtificials; ++A)
      obj(ArtBase + A) = Rational(1);
    priceOutBasis();
    Outcome Phase1 = minimize();
    // The phase-1 objective is bounded below by construction, so the
    // only non-optimal outcome is an exhausted budget.
    if (Phase1 != Outcome::Optimal)
      return Outcome::Budget;
    if (!objValue().isZero())
      return Outcome::Infeasible;
  }

  // Drive any artificial variables out of the basis (degenerate rows).
  for (unsigned R = 0; R != Rows; ++R) {
    if (Basis[R] < ArtBase)
      continue;
    unsigned Entering = ArtBase;
    for (unsigned C = 0; C != ArtBase; ++C) {
      if (!at(R, C).isZero()) {
        Entering = C;
        break;
      }
    }
    if (Entering != ArtBase)
      pivot(R, Entering);
    // Otherwise the row is all-zero over real columns: redundant; its
    // artificial stays basic at value zero, which is harmless as long
    // as artificial columns can never re-enter (handled below).
  }

  // Phase 2: zero nonbasic artificial columns so no pivot rule can ever
  // select them again.
  for (unsigned R = 0; R != Rows; ++R)
    for (unsigned A = 0; A != NumArtificials; ++A)
      if (Basis[R] != ArtBase + A)
        at(R, ArtBase + A) = Rational(0);

  for (unsigned C = 0; C != Cols; ++C)
    obj(C) = Rational(0);
  objValue() = Rational(0);
  if (!Objective.empty()) {
    assert(Objective.size() == NumStructural && "objective width mismatch");
    for (unsigned V = 0; V != NumStructural; ++V)
      obj(V) = Rational(Objective[V]);
  }
  // Keep artificials non-entering: give them +1 reduced cost
  // pre-pricing; basic ones end up at zero, nonbasic ones keep +1.
  for (unsigned A = 0; A != NumArtificials; ++A)
    obj(ArtBase + A) = Rational(1);
  priceOutBasis();

  return minimize();
}

SimplexTableau::Outcome SimplexTableau::reoptimize(const IntVector &Objective) {
  for (unsigned C = 0; C != Stride; ++C)
    ObjRow[C] = Rational(0);
  if (!Objective.empty()) {
    assert(Objective.size() == NumStructural && "objective width mismatch");
    for (unsigned V = 0; V != NumStructural; ++V)
      obj(V) = Rational(Objective[V]);
  }
  for (unsigned C = 0; C != Cols; ++C)
    if (ColIsArtificial[C])
      obj(C) = Rational(1);
  priceOutBasis();
  return minimize();
}

SimplexTableau::Outcome SimplexTableau::dualReoptimize() {
  unsigned DegenerateStreak = 0;
  const unsigned BlandThreshold = 2 * (Rows + Cols) + 16;
  // Hard safety valve on top of the anti-cycling rule: a warm caller
  // falls back to the exact cold solve when this trips.
  const unsigned MaxPivots = 400 + 20 * (Rows + Cols);
  unsigned Pivots = 0;
  const bool Budgeted = budget::active();
  for (;;) {
    bool UseBland = DegenerateStreak > BlandThreshold;
    // Leaving row: a primal-infeasible one. Default rule: most negative
    // right-hand side; Bland mode: smallest basic variable index.
    unsigned Leaving = Rows;
    for (unsigned R = 0; R != Rows; ++R) {
      if (!rhs(R).isNegative())
        continue;
      if (Leaving == Rows) {
        Leaving = R;
        continue;
      }
      if (UseBland) {
        if (Basis[R] < Basis[Leaving])
          Leaving = R;
      } else if (rhs(R) < rhs(Leaving) ||
                 (rhs(R) == rhs(Leaving) && Basis[R] < Basis[Leaving])) {
        Leaving = R;
      }
    }
    if (Leaving == Rows)
      return Outcome::Optimal; // Primal feasible again, still dual feasible.

    // Entering column: dual ratio test over negative row entries,
    // minimizing ObjRow[C] / -row[C]; ties break toward the smallest
    // column index (together with Bland's leaving rule this is the
    // cycling-free dual rule). Artificial columns never re-enter.
    const Rational *Rw = row(Leaving);
    unsigned Entering = Cols;
    Rational BestNum, BestDen; // Best ratio as BestNum / BestDen.
    for (unsigned C = 0; C != Cols; ++C) {
      if (ColIsArtificial[C] || !Rw[C].isNegative())
        continue;
      Rational Num = ObjRow[C];
      Rational Den = -Rw[C];
      if (Entering == Cols) {
        Entering = C;
        BestNum = Num;
        BestDen = Den;
        continue;
      }
      // Num/Den < BestNum/BestDen  <=>  Num*BestDen < BestNum*Den
      // (both denominators positive).
      if (Num * BestDen < BestNum * Den) {
        Entering = C;
        BestNum = Num;
        BestDen = Den;
      }
    }
    if (Entering == Cols)
      return Outcome::Infeasible; // Dual unbounded: primal empty.

    if (ObjRow[Entering].isZero())
      ++DegenerateStreak;
    else
      DegenerateStreak = 0;
    if (++Pivots > MaxPivots)
      return Outcome::Budget;
    if (Budgeted && (!budget::chargePivot() || budget::deadlineExpired()))
      return Outcome::Budget;
    pivot(Leaving, Entering);
  }
}

unsigned SimplexTableau::appendRowAndColumn() {
  assert(Rows < RowCapacity && Cols + 1 < Stride &&
         "tableau growth exceeds reserved capacity");
  unsigned NewCol = Cols++;
  unsigned NewRow = Rows++;
  // The cells were zeroed at build() and pivot loops only touch active
  // columns, so the fresh row and column are already all-zero.
  Basis[NewRow] = NewCol;
  ColIsArtificial[NewCol] = false;
  (void)NewRow;
  return NewCol;
}

void SimplexTableau::reduceAgainstBasis(std::vector<Rational> &Dense) {
  // Eliminate basic variables: basic columns are unit vectors, so each
  // elimination only touches nonbasic columns and cannot reintroduce an
  // earlier basic variable.
  for (unsigned R = 0; R != Rows; ++R) {
    unsigned BV = Basis[R];
    if (Dense[BV].isZero())
      continue;
    Rational Factor = Dense[BV];
    const Rational *Rw = row(R);
    for (unsigned C = 0; C != Cols; ++C)
      if (!Rw[C].isZero())
        Dense[C] -= Factor * Rw[C];
    if (!Rw[Stride - 1].isZero())
      Dense[Stride - 1] -= Factor * Rw[Stride - 1];
  }
}

unsigned SimplexTableau::addBoundRow(unsigned Var, bool Upper, Int Bound) {
  assert(Var < NumStructural && "bound on a non-structural variable");
  DenseScratch.assign(Stride, Rational(0));
  // Upper:  x + s =  Bound;  lower:  -x + s = -Bound  (slack s >= 0).
  DenseScratch[Var] = Rational(Upper ? 1 : -1);
  DenseScratch[Stride - 1] = Rational(Upper ? Bound : checkedNeg(Bound));
  reduceAgainstBasis(DenseScratch);
  unsigned OldCols = Cols;
  unsigned SlackCol = appendRowAndColumn();
  Rational *Rw = row(Rows - 1);
  for (unsigned C = 0; C != OldCols; ++C)
    Rw[C] = DenseScratch[C];
  Rw[SlackCol] = Rational(1);
  Rw[Stride - 1] = DenseScratch[Stride - 1];
  // The new slack is basic with zero reduced cost: reduced costs of all
  // other columns are unchanged by a row whose dual value is zero.
  return SlackCol;
}

void SimplexTableau::tightenBoundRow(unsigned SlackCol, Int Delta) {
  // The slack's column is B^-1 e_row for the bound row, so shifting the
  // row's original right-hand side by Delta shifts the current
  // right-hand sides by Delta * column(SlackCol).
  if (Delta == 0)
    return;
  Rational D(Delta);
  for (unsigned R = 0; R != Rows; ++R) {
    const Rational &Entry = at(R, SlackCol);
    if (!Entry.isZero())
      rhs(R) += D * Entry;
  }
}

SimplexTableau::Outcome SimplexTableau::addPinEquality(const IntVector &Coeffs,
                                                       Int Rhs) {
  assert(Coeffs.size() == NumStructural && "pin row width mismatch");
  DenseScratch.assign(Stride, Rational(0));
  for (unsigned V = 0; V != NumStructural; ++V)
    DenseScratch[V] = Rational(Coeffs[V]);
  DenseScratch[Stride - 1] = Rational(Rhs);
  reduceAgainstBasis(DenseScratch);
  // Normalize so the fresh artificial starts nonnegative.
  if (DenseScratch[Stride - 1].isNegative())
    for (unsigned C = 0; C != Stride; ++C)
      if (!DenseScratch[C].isZero())
        DenseScratch[C] = -DenseScratch[C];
  unsigned OldCols = Cols;
  unsigned ArtCol = appendRowAndColumn();
  Rational *Rw = row(Rows - 1);
  for (unsigned C = 0; C != OldCols; ++C)
    Rw[C] = DenseScratch[C];
  Rw[ArtCol] = Rational(1);
  Rw[Stride - 1] = DenseScratch[Stride - 1];
  ColIsArtificial[ArtCol] = true;

  // Mini phase 1 from the current feasible basis: minimize the sum of
  // artificials (the fresh one plus any basic-at-zero leftovers).
  for (unsigned C = 0; C != Stride; ++C)
    ObjRow[C] = Rational(0);
  for (unsigned C = 0; C != Cols; ++C)
    if (ColIsArtificial[C])
      obj(C) = Rational(1);
  priceOutBasis();
  Outcome Phase = minimize();
  if (Phase != Outcome::Optimal)
    return Outcome::Budget; // Bounded below: only the budget can stop it.
  if (!objValue().isZero())
    return Outcome::Infeasible;

  // Drive the artificial out of the basis if it is still there.
  for (unsigned R = 0; R != Rows; ++R) {
    if (!ColIsArtificial[Basis[R]])
      continue;
    unsigned Entering = Cols;
    const Rational *RowPtr = row(R);
    for (unsigned C = 0; C != Cols; ++C) {
      if (!ColIsArtificial[C] && !RowPtr[C].isZero()) {
        Entering = C;
        break;
      }
    }
    if (Entering != Cols)
      pivot(R, Entering);
    // Otherwise the pin row is redundant; its artificial stays basic at
    // zero, excluded from re-entry like every artificial column.
  }

  // Zero nonbasic artificial columns (same discipline as phase 2).
  for (unsigned C = 0; C != Cols; ++C) {
    if (!ColIsArtificial[C])
      continue;
    for (unsigned R = 0; R != Rows; ++R)
      if (Basis[R] != C)
        at(R, C) = Rational(0);
  }
  return Outcome::Optimal;
}

void SimplexTableau::extractPoint(std::vector<Rational> &Point) const {
  Point.assign(NumStructural, Rational(0));
  for (unsigned R = 0; R != Rows; ++R)
    if (Basis[R] < NumStructural)
      Point[Basis[R]] = rhs(R);
}
