//===- lp/Budget.h - Solver resource budgets -------------------*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Resource budgets for the exact LP/ILP solvers. A SolverBudget caps the
/// number of simplex pivots, branch-and-bound nodes, and wall-clock time a
/// region of work may consume. Budgets are installed with a RAII
/// BudgetScope; scopes nest (an operator-wide deadline around per-kernel
/// pivot caps), and every charge is applied to all scopes on the current
/// thread's stack. When any scope is exhausted the solvers return
/// BudgetExceeded, which the scheduler treats like an infeasible ILP and
/// resolves through its normal fallback chain.
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_LP_BUDGET_H
#define POLYINJECT_LP_BUDGET_H

#include <chrono>
#include <cstdint>

namespace pinj {

/// Limits for a region of solver work. A zero field means "unlimited".
struct SolverBudget {
  /// Maximum simplex pivots (phase 1 + phase 2, all relaxations).
  std::uint64_t MaxPivots = 0;
  /// Maximum branch-and-bound nodes across all ILP solves.
  std::uint64_t MaxIlpNodes = 0;
  /// Wall-clock deadline in milliseconds.
  double WallMs = 0;

  bool unlimited() const {
    return MaxPivots == 0 && MaxIlpNodes == 0 && WallMs <= 0;
  }
};

namespace budget {

struct BudgetState;

/// Installs \p B on the current thread for the lifetime of the scope.
/// An unlimited budget installs nothing (charging stays free).
class BudgetScope {
public:
  explicit BudgetScope(const SolverBudget &B);
  ~BudgetScope();

  BudgetScope(const BudgetScope &) = delete;
  BudgetScope &operator=(const BudgetScope &) = delete;

  /// True once any limit of this scope (not an outer one) has tripped.
  bool tripped() const;

private:
  BudgetState *S = nullptr;
};

/// Charges one simplex pivot to every active scope. \returns false when
/// a limit is exhausted (the caller should stop and report
/// BudgetExceeded). The first failing charge per scope also bumps the
/// lp.budget_exceeded counter.
bool chargePivot();

/// Charges one branch-and-bound node to every active scope.
bool chargeNode();

/// True when any active scope's wall-clock deadline has passed (and
/// only then — pivot/node exhaustion does not count; use anyTripped()
/// for that). Expiry trips the scope like an exhausted charge.
bool deadlineExpired();

/// True when any active scope has tripped any of its limits. Recovery
/// boundaries use this to attribute a failure to the budget.
bool anyTripped();

/// True when any budget scope is active on this thread (cheap check so
/// solver hot loops can skip the clock entirely).
bool active();

} // namespace budget
} // namespace pinj

#endif // POLYINJECT_LP_BUDGET_H
