//===- lp/LexMin.cpp ------------------------------------------------------===//

#include "lp/LexMin.h"

using namespace pinj;

IlpResult pinj::solveLexMin(IlpProblem Problem,
                            const std::vector<LexObjective> &Objectives) {
  IlpResult Last;
  if (Objectives.empty()) {
    // Pure feasibility.
    Problem.Lp.Objective.assign(Problem.numVars(), 0);
    return solveIlp(Problem);
  }

  unsigned TotalNodes = 0;
  for (const LexObjective &Level : Objectives) {
    assert(Level.Coeffs.size() == Problem.numVars() &&
           "objective width mismatch");
    Problem.Lp.Objective = Level.Coeffs;
    Last = solveIlp(Problem);
    TotalNodes += Last.NodesExplored;
    if (!Last.isOptimal()) {
      Last.NodesExplored = TotalNodes;
      return Last;
    }
    // Pin this level at its optimum: q * (c . x) == p for Value == p/q.
    Int P = Last.Value.numerator();
    Int Q = Last.Value.denominator();
    IntVector Pinned(Problem.numVars(), 0);
    for (unsigned V = 0, E = Problem.numVars(); V != E; ++V)
      Pinned[V] = checkedMul(Q, Level.Coeffs[V]);
    Problem.Lp.addEq(std::move(Pinned), checkedNeg(P));
  }
  Last.NodesExplored = TotalNodes;
  return Last;
}
