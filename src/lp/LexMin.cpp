//===- lp/LexMin.cpp ------------------------------------------------------===//
//
// Lexicographic minimization with warm-started levels. The old driver
// re-ran a full two-phase branch and bound from scratch at every
// objective level; this one keeps one tableau at a feasible basis across
// levels (phase 1 runs once), pins each level with addPinEquality's mini
// phase 1, and warm-starts branch-and-bound children from their parent's
// basis via bound tightening + dual simplex.
//
// Bit-exactness: an intermediate level only contributes its optimal
// VALUE (the pin row), which is unique, so any correct solver may
// compute it. The FINAL level's point becomes the schedule, so that
// level always runs the exact cold solver (solveIlp), which replicates
// the original pivot sequence — schedules stay byte-identical. Any warm
// hiccup (cycling valve, pin failure) falls back to the exact solver
// for the level, trading speed for the same answer.
//
//===----------------------------------------------------------------------===//

#include "lp/LexMin.h"

#include "lp/Budget.h"
#include "lp/Tableau.h"
#include "obs/Journal.h"
#include "obs/Metrics.h"
#include "support/FailPoint.h"
#include "support/Status.h"

#include <algorithm>
#include <memory>
#include <optional>

using namespace pinj;

namespace {

struct LpMetrics {
  obs::Counter &SimplexSolves;
  obs::Counter &SimplexPivots;
  obs::Histogram &PivotsPerSolve;
  obs::Counter &IlpSolves;
  obs::Counter &IlpFailures;
  obs::Counter &IlpNodes;
  obs::Histogram &NodesPerSolve;
  obs::Counter &BnbPruned;
  obs::Counter &BnbIncumbents;
  obs::Histogram &BnbMaxDepth;
  obs::Histogram &NodesPerDim;
  obs::Histogram &PivotsPerDim;
};

LpMetrics &lpMetrics() {
  static LpMetrics M{obs::metrics().counter("lp.simplex_solves"),
                     obs::metrics().counter("lp.simplex_pivots"),
                     obs::metrics().histogram("lp.pivots_per_solve"),
                     obs::metrics().counter("lp.ilp_solves"),
                     obs::metrics().counter("lp.ilp_failures"),
                     obs::metrics().counter("lp.ilp_nodes"),
                     obs::metrics().histogram("lp.ilp_nodes_per_solve"),
                     obs::metrics().counter("lp.bnb_pruned"),
                     obs::metrics().counter("lp.bnb_incumbent_updates"),
                     obs::metrics().histogram("lp.bnb_max_depth"),
                     obs::metrics().histogram("lp.nodes_per_dim"),
                     obs::metrics().histogram("lp.pivots_per_dim")};
  return M;
}

/// Warm solver state for one lexmin run: a persistent root tableau that
/// survives across objective levels, plus the per-level warm branch and
/// bound. Any failure flips Dead and the caller re-solves the level with
/// the exact cold path.
class WarmLexSolver {
public:
  WarmLexSolver(const IlpProblem &Problem, unsigned NumLevels)
      : Problem(Problem) {
    for (bool I : Problem.IsInteger)
      if (I)
        ++NumIntegerVars;
    // Growth room: one pin row per non-final level, and along any
    // branch-and-bound path at most one upper and one lower bound row
    // per integer variable (later branches tighten in place).
    Reserve = (NumLevels - 1) + 2 * NumIntegerVars;
  }

  bool dead() const { return Dead; }
  void kill() { Dead = true; }

  /// Solves one level; \returns nullopt when the warm path gave up and
  /// the caller must run the exact solver instead.
  std::optional<IlpResult> solveLevel(const IntVector &Objective) {
    LpMetrics &M = lpMetrics();
    M.IlpSolves.inc();
    failpoint::hit("lp.ilp");

    NodeCtx Root;
    IlpResult Result;
    unsigned Nodes = 0;
    unsigned Pruned = 0;
    unsigned IncumbentUpdates = 0;
    unsigned MaxDepth = 0;
    bool Exhausted = false;

    // Root relaxation: full two-phase once, re-priced phase 2 after.
    if (!budget::chargeNode()) {
      Exhausted = true;
    } else {
      ++Nodes;
      SimplexTableau::Outcome O;
      unsigned PivotsBefore = Tab.pivots();
      M.SimplexSolves.inc();
      failpoint::hit("lp.simplex");
      if (!Built) {
        Tab.build(Problem.Lp, {}, Reserve, Reserve);
        O = Tab.solveTwoPhase(Objective);
        Built = true;
      } else {
        O = Tab.reoptimize(Objective);
      }
      M.SimplexPivots.add(Tab.pivots() - PivotsBefore);
      M.PivotsPerSolve.observe(Tab.pivots() - PivotsBefore);
      addThreadSimplexPivots(Tab.pivots() - PivotsBefore);
      switch (O) {
      case SimplexTableau::Outcome::Budget:
        Exhausted = true;
        break;
      case SimplexTableau::Outcome::Infeasible:
        Result.Status = IlpResult::Infeasible;
        Result.NodesExplored = Nodes;
        M.IlpFailures.inc();
        M.IlpNodes.add(Nodes);
        M.NodesPerSolve.observe(Nodes);
        return Result;
      case SimplexTableau::Outcome::Unbounded:
        raiseError(StatusCode::SolverError, "lp.ilp",
                   "unbounded ILP relaxation");
      case SimplexTableau::Outcome::Optimal:
        break;
      }
    }

    std::optional<std::vector<Rational>> Incumbent;
    Rational IncumbentValue;

    // The branch-and-bound works on copies of the root tableau, so the
    // persistent root basis stays at the level's LP optimum for the pin.
    struct WorkItem {
      std::unique_ptr<NodeCtx> Ctx; ///< Parent state to branch from.
      unsigned Var = 0;
      Int Bound = 0;
      bool Upper = false;
      unsigned Depth = 0; ///< Root-to-node branch count, for stats.
    };
    std::vector<WorkItem> Work;

    auto evaluate = [&](NodeCtx &Ctx, unsigned Depth) -> bool {
      // \returns false when the warm path must be abandoned.
      std::vector<Rational> Point;
      Ctx.T.extractPoint(Point);
      Rational Value(Problem.Lp.ObjectiveConstant);
      for (unsigned V = 0, E = Problem.numVars(); V != E; ++V)
        if (!Objective.empty() && Objective[V] != 0)
          Value += Rational(Objective[V]) * Point[V];
      if (Incumbent && Value >= IncumbentValue) {
        ++Pruned;
        return true; // Pruned.
      }
      unsigned Fractional = Problem.numVars();
      for (unsigned V = 0, E = Problem.numVars(); V != E; ++V)
        if (Problem.IsInteger[V] && !Point[V].isInteger()) {
          Fractional = V;
          break;
        }
      if (Fractional == Problem.numVars()) {
        if (!Incumbent || Value < IncumbentValue) {
          Incumbent = std::move(Point);
          IncumbentValue = Value;
          ++IncumbentUpdates;
        }
        return true;
      }
      Int Floor = Point[Fractional].floor();
      // Up branch (popped second) gets a copy; the down branch (popped
      // first) reuses this node's tableau.
      auto UpCtx = std::make_unique<NodeCtx>(Ctx);
      Work.push_back({std::move(UpCtx), Fractional, checkedAdd(Floor, 1),
                      false, Depth + 1});
      auto DownCtx = std::make_unique<NodeCtx>(std::move(Ctx));
      Work.push_back({std::move(DownCtx), Fractional, Floor, true,
                      Depth + 1});
      return true;
    };

    if (!Exhausted) {
      Root.T = Tab; // Branching copies; the member stays pristine.
      Root.Le.assign(Problem.numVars(), BoundInfo());
      Root.Ge.assign(Problem.numVars(), BoundInfo());
      if (!evaluate(Root, 0))
        return std::nullopt;
    }

    while (!Work.empty() && !Exhausted) {
      WorkItem Item = std::move(Work.back());
      Work.pop_back();
      NodeCtx &Ctx = *Item.Ctx;
      // Apply the branch bound: tighten an existing bound row in place
      // or append a fresh one in the current basis.
      std::vector<BoundInfo> &Side = Item.Upper ? Ctx.Le : Ctx.Ge;
      BoundInfo &B = Side[Item.Var];
      if (B.Present) {
        // Upper rows encode rhs = bound, lower rows rhs = -bound.
        Int Delta = Item.Upper ? checkedSub(Item.Bound, B.Bound)
                               : checkedSub(B.Bound, Item.Bound);
        Ctx.T.tightenBoundRow(B.SlackCol, Delta);
        B.Bound = Item.Bound;
      } else {
        B.SlackCol = Ctx.T.addBoundRow(Item.Var, Item.Upper, Item.Bound);
        B.Bound = Item.Bound;
        B.Present = true;
      }

      if (!budget::chargeNode()) {
        Exhausted = true;
        break;
      }
      ++Nodes;
      MaxDepth = std::max(MaxDepth, Item.Depth);
      unsigned PivotsBefore = Ctx.T.pivots();
      M.SimplexSolves.inc();
      failpoint::hit("lp.simplex");
      SimplexTableau::Outcome O = Ctx.T.dualReoptimize();
      M.SimplexPivots.add(Ctx.T.pivots() - PivotsBefore);
      M.PivotsPerSolve.observe(Ctx.T.pivots() - PivotsBefore);
      addThreadSimplexPivots(Ctx.T.pivots() - PivotsBefore);
      if (O == SimplexTableau::Outcome::Budget) {
        if (budget::anyTripped()) {
          Exhausted = true;
          break;
        }
        // The dual simplex safety valve tripped without a real budget:
        // abandon the warm path for this level.
        M.IlpNodes.add(Nodes);
        M.NodesPerSolve.observe(Nodes);
        return std::nullopt;
      }
      if (O == SimplexTableau::Outcome::Infeasible)
        continue;
      if (!evaluate(Ctx, Item.Depth))
        return std::nullopt;
    }

    Result.NodesExplored = Nodes;
    Result.NodesPruned = Pruned;
    Result.IncumbentUpdates = IncumbentUpdates;
    Result.MaxDepth = MaxDepth;
    M.IlpNodes.add(Nodes);
    M.NodesPerSolve.observe(Nodes);
    M.BnbPruned.add(Pruned);
    M.BnbIncumbents.add(IncumbentUpdates);
    M.BnbMaxDepth.observe(MaxDepth);
    if (Exhausted) {
      Result.Status = IlpResult::BudgetExceeded;
      if (Incumbent) {
        Result.Value = IncumbentValue;
        Result.Point = *Incumbent;
      }
      M.IlpFailures.inc();
      return Result;
    }
    if (!Incumbent) {
      Result.Status = IlpResult::Infeasible;
      M.IlpFailures.inc();
      return Result;
    }
    Result.Status = IlpResult::Optimal;
    Result.Value = IncumbentValue;
    Result.Point = *Incumbent;
    return Result;
  }

  /// Pins the just-solved level at Coeffs . x == P on the persistent
  /// root basis. \returns false when the warm state is no longer usable.
  bool pin(const IntVector &Coeffs, Int P) {
    if (!Built)
      return false;
    SimplexTableau::Outcome O = Tab.addPinEquality(Coeffs, P);
    return O == SimplexTableau::Outcome::Optimal;
  }

private:
  struct BoundInfo {
    unsigned SlackCol = 0;
    Int Bound = 0;
    bool Present = false;
  };
  struct NodeCtx {
    SimplexTableau T;
    std::vector<BoundInfo> Le, Ge;
  };

  const IlpProblem &Problem;
  SimplexTableau Tab;
  bool Built = false;
  bool Dead = false;
  unsigned NumIntegerVars = 0;
  unsigned Reserve = 0;
};

} // namespace

namespace {

/// Per-dimension attribution: one solveLexMin call is one scheduler
/// dimension's solve, so the pivot/node totals it accumulated feed the
/// lp.*_per_dim histograms and the journal's solve_end record.
void recordDimensionSolve(const IlpResult &R, unsigned Levels,
                          std::uint64_t Pivots) {
  LpMetrics &M = lpMetrics();
  M.NodesPerDim.observe(R.NodesExplored);
  M.PivotsPerDim.observe(Pivots);
  if (!obs::Journal::fastEnabled())
    return;
  const char *Status = R.Status == IlpResult::Optimal      ? "optimal"
                       : R.Status == IlpResult::Infeasible ? "infeasible"
                                                           : "budget";
  obs::JournalEvent("solve_end")
      .field("levels", Levels)
      .field("nodes", R.NodesExplored)
      .field("pruned", R.NodesPruned)
      .field("incumbents", R.IncumbentUpdates)
      .field("max_depth", R.MaxDepth)
      .field("pivots", static_cast<unsigned long long>(Pivots))
      .field("status", Status);
}

} // namespace

IlpResult pinj::solveLexMin(IlpProblem Problem,
                            const std::vector<LexObjective> &Objectives) {
  IlpResult Last;
  const std::uint64_t PivotsBefore = threadSimplexPivots();
  if (Objectives.empty()) {
    // Pure feasibility.
    Problem.Lp.Objective.assign(Problem.numVars(), 0);
    Last = solveIlp(Problem);
    recordDimensionSolve(Last, 0, threadSimplexPivots() - PivotsBefore);
    return Last;
  }

  // Intermediate levels only contribute their (unique) optimal value to
  // the pin rows, so they may run warm; the final level's point is the
  // returned solution and always runs the exact cold solver.
  const unsigned NumLevels = Objectives.size();
  WarmLexSolver Warm(Problem, NumLevels);

  unsigned TotalNodes = 0;
  unsigned TotalPruned = 0;
  unsigned TotalIncumbents = 0;
  unsigned MaxDepth = 0;
  for (unsigned L = 0; L != NumLevels; ++L) {
    const LexObjective &Level = Objectives[L];
    assert(Level.Coeffs.size() == Problem.numVars() &&
           "objective width mismatch");
    const bool Final = L + 1 == NumLevels;
    Problem.Lp.Objective = Level.Coeffs;
    if (Final || Warm.dead()) {
      Last = solveIlp(Problem);
    } else if (std::optional<IlpResult> W = Warm.solveLevel(Level.Coeffs)) {
      Last = std::move(*W);
    } else {
      Warm.kill();
      Last = solveIlp(Problem);
    }
    TotalNodes += Last.NodesExplored;
    TotalPruned += Last.NodesPruned;
    TotalIncumbents += Last.IncumbentUpdates;
    MaxDepth = std::max(MaxDepth, Last.MaxDepth);
    if (!Last.isOptimal()) {
      Last.NodesExplored = TotalNodes;
      Last.NodesPruned = TotalPruned;
      Last.IncumbentUpdates = TotalIncumbents;
      Last.MaxDepth = MaxDepth;
      recordDimensionSolve(Last, NumLevels,
                           threadSimplexPivots() - PivotsBefore);
      return Last;
    }
    // Pin this level at its optimum: q * (c . x) == p for Value == p/q.
    Int P = Last.Value.numerator();
    Int Q = Last.Value.denominator();
    IntVector Pinned(Problem.numVars(), 0);
    for (unsigned V = 0, E = Problem.numVars(); V != E; ++V)
      Pinned[V] = checkedMul(Q, Level.Coeffs[V]);
    if (!Final && !Warm.dead() && !Warm.pin(Pinned, P))
      Warm.kill();
    Problem.Lp.addEq(std::move(Pinned), checkedNeg(P));
  }
  Last.NodesExplored = TotalNodes;
  Last.NodesPruned = TotalPruned;
  Last.IncumbentUpdates = TotalIncumbents;
  Last.MaxDepth = MaxDepth;
  recordDimensionSolve(Last, NumLevels,
                       threadSimplexPivots() - PivotsBefore);
  return Last;
}
