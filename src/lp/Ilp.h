//===- lp/Ilp.h - Branch-and-bound mixed integer solver ---------*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A mixed integer linear program solver on top of the exact simplex.
/// Scheduling coefficients are the integer variables (bounded, per the
/// Pluto-style assumption the paper adopts); Farkas multipliers remain
/// rational, so branch-and-bound only branches on bounded variables and
/// terminates.
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_LP_ILP_H
#define POLYINJECT_LP_ILP_H

#include "lp/Simplex.h"

namespace pinj {

/// A mixed ILP: the base LP plus a set of variables restricted to
/// integers. Integer variables should be bounded (via constraints) or the
/// search may not terminate; the scheduler always bounds them.
struct IlpProblem {
  LpProblem Lp;
  std::vector<bool> IsInteger; ///< One flag per variable.

  explicit IlpProblem(unsigned NumVars = 0)
      : Lp(NumVars), IsInteger(NumVars, false) {}

  unsigned numVars() const { return Lp.NumVars; }
  void markInteger(unsigned Var) {
    assert(Var < IsInteger.size() && "variable out of range");
    IsInteger[Var] = true;
  }
};

/// Result of a mixed ILP solve. On success, Point entries for integer
/// variables are exact integers. BudgetExceeded means the enclosing
/// SolverBudget ran out mid-search: any Point carried along is a feasible
/// incumbent but not proven optimal, and the result must not be cached as
/// a proof of infeasibility.
struct IlpResult {
  enum StatusTy { Optimal, Infeasible, BudgetExceeded };

  StatusTy Status = Infeasible;
  Rational Value;
  std::vector<Rational> Point;

  /// Branch-and-bound statistics: nodes whose relaxation was solved,
  /// nodes discarded by the incumbent bound before branching, times the
  /// incumbent improved, and the deepest root-to-node path visited. The
  /// journal's solve_end events aggregate these per scheduler dimension.
  unsigned NodesExplored = 0;
  unsigned NodesPruned = 0;
  unsigned IncumbentUpdates = 0;
  unsigned MaxDepth = 0;

  bool isOptimal() const { return Status == Optimal; }
};

/// Solves \p Problem by branch and bound with simplex relaxations.
IlpResult solveIlp(const IlpProblem &Problem);

} // namespace pinj

#endif // POLYINJECT_LP_ILP_H
