//===- ir/Kernel.h - Fused-operator intermediate representation -*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mini-IR for fused AI/DL operators handed to the polyhedral
/// pipeline, mirroring what MindSpore's graph-kernel fusion hands to AKG:
/// a short sequence of statements, each a perfectly nested rectangular
/// loop nest computing one tensor element from affine tensor accesses.
/// The running example of the paper (Fig. 2(a)) is two such statements.
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_IR_KERNEL_H
#define POLYINJECT_IR_KERNEL_H

#include "math/Matrix.h"

#include <string>
#include <vector>

namespace pinj {

/// A dense tensor with a concrete shape. Layout is row major; the last
/// dimension is contiguous in memory.
struct Tensor {
  std::string Name;
  std::vector<Int> Shape;
  unsigned ElemBytes = 4; ///< float32 by default.

  Int numElements() const {
    Int N = 1;
    for (Int S : Shape)
      N = checkedMul(N, S);
    return N;
  }

  /// Row-major element strides, one per dimension (last is 1).
  std::vector<Int> strides() const {
    std::vector<Int> S(Shape.size(), 1);
    for (unsigned D = Shape.size(); D-- > 1;)
      S[D - 1] = checkedMul(S[D], Shape[D]);
    return S;
  }
};

/// A tensor access: one affine index expression per tensor dimension.
/// Each index is a row over (statement iterators..., parameters..., 1).
struct Access {
  unsigned TensorId = 0;
  bool IsWrite = false;
  std::vector<IntVector> Indices;
};

/// The arithmetic performed by a statement; the interpreter in exec/
/// gives each kind a concrete semantics over the read values.
enum class OpKind {
  Assign, ///< w = r0
  Add,    ///< w = r0 + r1
  Sub,    ///< w = r0 - r1
  Mul,    ///< w = r0 * r1
  Div,    ///< w = r0 / r1
  Max,    ///< w = max(r0, r1)
  Min,    ///< w = min(r0, r1)
  Relu,   ///< w = max(r0, 0)
  Exp,    ///< w = exp(r0)
  Rsqrt,  ///< w = 1/sqrt(r0)
  Neg,    ///< w = -r0
  Fma,    ///< w = r0 + r1 * r2 (reduction update form)
  MulSub, ///< w = (r0 - r1) * r2
};

/// \returns the number of read operands \p Kind consumes.
unsigned numOperands(OpKind Kind);

/// \returns a short mnemonic ("add", "fma", ...).
const char *opKindName(OpKind Kind);

/// One statement: a perfectly nested rectangular loop nest
///   for i0 in [0, Extents[0]) ... W[..] = op(R0[..], R1[..], ...)
/// Its position in the original program is encoded by OrigBeta, the
/// interleaving vector of the classic 2d+1 representation: the original
/// schedule is (Beta[0], i0, Beta[1], i1, ..., Beta[d]).
struct Statement {
  std::string Name;
  std::vector<std::string> IterNames;
  std::vector<Int> Extents;
  Access Write;
  std::vector<Access> Reads;
  OpKind Kind = OpKind::Assign;
  std::vector<Int> OrigBeta;

  unsigned numIters() const { return Extents.size(); }

  /// All accesses, write first.
  std::vector<const Access *> allAccesses() const {
    std::vector<const Access *> All;
    All.push_back(&Write);
    for (const Access &R : Reads)
      All.push_back(&R);
    return All;
  }
};

/// A fused operator: tensors plus an ordered list of statements.
/// Parameters are symbolic sizes; the operator library uses concrete
/// shapes (NumParams == 0), but the polyhedral layers are parametric.
struct Kernel {
  std::string Name;
  std::vector<std::string> ParamNames;
  std::vector<Tensor> Tensors;
  std::vector<Statement> Stmts;

  unsigned numParams() const { return ParamNames.size(); }

  /// Width of an affine row of statement \p S: iters + params + 1.
  unsigned rowWidth(const Statement &S) const {
    return S.numIters() + numParams() + 1;
  }

  /// Checks structural invariants (access arity, row widths, betas);
  /// \returns an empty string if the kernel is well formed, else a
  /// diagnostic.
  std::string verify() const;
};

} // namespace pinj

#endif // POLYINJECT_IR_KERNEL_H
