//===- ir/Builder.cpp -----------------------------------------------------===//

#include "ir/Builder.h"

using namespace pinj;

KernelBuilder::KernelBuilder(std::string Name) {
  TheKernel.Name = std::move(Name);
}

unsigned KernelBuilder::tensor(std::string Name, std::vector<Int> Shape,
                               unsigned ElemBytes) {
  Tensor T;
  T.Name = std::move(Name);
  T.Shape = std::move(Shape);
  T.ElemBytes = ElemBytes;
  TheKernel.Tensors.push_back(std::move(T));
  return TheKernel.Tensors.size() - 1;
}

KernelBuilder &
KernelBuilder::stmt(std::string Name,
                    std::vector<std::pair<std::string, Int>> Iters) {
  finalizeCurrent();
  Current = Statement();
  Current.Name = std::move(Name);
  for (auto &[IterName, Extent] : Iters) {
    Current.IterNames.push_back(IterName);
    Current.Extents.push_back(Extent);
  }
  HasCurrent = true;
  return *this;
}

IntVector KernelBuilder::resolveIndex(const Statement &S,
                                      const IndexExpr &Index) const {
  IntVector Row(S.numIters() + TheKernel.numParams() + 1, 0);
  for (const auto &[IterName, Coeff] : Index.Terms) {
    bool Found = false;
    for (unsigned I = 0, E = S.numIters(); I != E; ++I) {
      if (S.IterNames[I] == IterName) {
        Row[I] = checkedAdd(Row[I], Coeff);
        Found = true;
        break;
      }
    }
    if (!Found)
      raiseError(StatusCode::InvalidInput, "ir.builder",
                 "unknown iterator '" + IterName + "' in statement '" +
                     S.Name + "'");
  }
  Row.back() = Index.Constant;
  return Row;
}

KernelBuilder &KernelBuilder::write(unsigned TensorId,
                                    std::vector<IndexExpr> Indices) {
  assert(HasCurrent && "write() before stmt()");
  Current.Write.TensorId = TensorId;
  Current.Write.IsWrite = true;
  Current.Write.Indices.clear();
  for (const IndexExpr &Index : Indices)
    Current.Write.Indices.push_back(resolveIndex(Current, Index));
  return *this;
}

KernelBuilder &KernelBuilder::read(unsigned TensorId,
                                   std::vector<IndexExpr> Indices) {
  assert(HasCurrent && "read() before stmt()");
  Access A;
  A.TensorId = TensorId;
  A.IsWrite = false;
  for (const IndexExpr &Index : Indices)
    A.Indices.push_back(resolveIndex(Current, Index));
  Current.Reads.push_back(std::move(A));
  return *this;
}

KernelBuilder &KernelBuilder::op(OpKind Kind) {
  assert(HasCurrent && "op() before stmt()");
  Current.Kind = Kind;
  return *this;
}

void KernelBuilder::finalizeCurrent() {
  if (!HasCurrent)
    return;
  // Each statement is its own loop nest: beta prefix = statement index.
  Current.OrigBeta.assign(Current.numIters() + 1, 0);
  Current.OrigBeta[0] = static_cast<Int>(TheKernel.Stmts.size());
  TheKernel.Stmts.push_back(std::move(Current));
  HasCurrent = false;
}

Kernel KernelBuilder::build() {
  finalizeCurrent();
  std::string Diag = TheKernel.verify();
  if (!Diag.empty())
    raiseError(StatusCode::InvalidInput, "ir.verify",
               "malformed kernel '" + TheKernel.Name + "': " + Diag);
  return std::move(TheKernel);
}
