//===- ir/Parser.h - Textual kernel format ----------------------*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small line-based textual format for fused operators, consumed by
/// the polyinject-opt driver and handy in tests:
///
/// \code
///   kernel bias_relu
///   tensor IN 256 512
///   tensor BIAS 512
///   tensor TMP 256 512
///   tensor OUT 256 512
///   stmt ADD iter i=256 j=512 op add write TMP[i][j] (backslash)
///        read IN[i][j] read BIAS[j]
///   stmt ACT iter i=256 j=512 op relu write OUT[i][j] read TMP[i][j]
/// \endcode
///
/// Index expressions are an iterator name, an integer, or `iter+int`.
/// Lines starting with '#' are comments; a trailing backslash continues
/// a line.
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_IR_PARSER_H
#define POLYINJECT_IR_PARSER_H

#include "ir/Kernel.h"

#include <optional>
#include <string>

namespace pinj {

/// Parses \p Text; on failure \returns nullopt and fills \p Error with a
/// "line N: message" diagnostic.
std::optional<Kernel> parseKernel(const std::string &Text,
                                  std::string &Error);

/// Parses an op kind mnemonic ("add", "fma", ...); nullopt if unknown.
std::optional<OpKind> parseOpKind(const std::string &Name);

} // namespace pinj

#endif // POLYINJECT_IR_PARSER_H
