//===- ir/Builder.h - Convenience construction of kernels -------*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fluent builder for ir::Kernel used by the operator library,
/// the examples and the tests. Index expressions are written in terms of
/// iterator names; the builder resolves them to affine rows.
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_IR_BUILDER_H
#define POLYINJECT_IR_BUILDER_H

#include "ir/Kernel.h"

namespace pinj {

/// One tensor-dimension index as a sum of iterator terms and a constant,
/// e.g. iterTerm("i") + 2, or a plain constant.
struct IndexExpr {
  std::vector<std::pair<std::string, Int>> Terms;
  Int Constant = 0;

  IndexExpr() = default;
  /*implicit*/ IndexExpr(Int C) : Constant(C) {}
  /*implicit*/ IndexExpr(const char *IterName) {
    Terms.emplace_back(IterName, 1);
  }

  IndexExpr operator+(Int C) const {
    IndexExpr R = *this;
    R.Constant = checkedAdd(R.Constant, C);
    return R;
  }
};

/// Builds one Kernel statement by statement. Betas are assigned so that
/// statements execute in the order they are added, each in its own loop
/// nest (the shape graph-kernel fusion produces).
class KernelBuilder {
public:
  explicit KernelBuilder(std::string Name);

  /// Declares a tensor and \returns its id.
  unsigned tensor(std::string Name, std::vector<Int> Shape,
                  unsigned ElemBytes = 4);

  /// Starts a statement with the given iterators; Iters maps iterator
  /// name to extent, outermost first.
  KernelBuilder &stmt(std::string Name,
                      std::vector<std::pair<std::string, Int>> Iters);

  /// Sets the write access of the current statement.
  KernelBuilder &write(unsigned TensorId, std::vector<IndexExpr> Indices);

  /// Appends a read access to the current statement.
  KernelBuilder &read(unsigned TensorId, std::vector<IndexExpr> Indices);

  /// Sets the op kind of the current statement.
  KernelBuilder &op(OpKind Kind);

  /// Finalizes the kernel: assigns betas, verifies, and \returns it.
  /// Aborts on a malformed kernel (builder misuse is a programming error).
  Kernel build();

private:
  IntVector resolveIndex(const Statement &S, const IndexExpr &Index) const;
  void finalizeCurrent();

  Kernel TheKernel;
  Statement Current;
  bool HasCurrent = false;
};

} // namespace pinj

#endif // POLYINJECT_IR_BUILDER_H
