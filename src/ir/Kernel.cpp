//===- ir/Kernel.cpp ------------------------------------------------------===//

#include "ir/Kernel.h"

using namespace pinj;

unsigned pinj::numOperands(OpKind Kind) {
  switch (Kind) {
  case OpKind::Assign:
  case OpKind::Relu:
  case OpKind::Exp:
  case OpKind::Rsqrt:
  case OpKind::Neg:
    return 1;
  case OpKind::Add:
  case OpKind::Sub:
  case OpKind::Mul:
  case OpKind::Div:
  case OpKind::Max:
  case OpKind::Min:
    return 2;
  case OpKind::Fma:
  case OpKind::MulSub:
    return 3;
  }
  fatalError("unknown op kind");
}

const char *pinj::opKindName(OpKind Kind) {
  switch (Kind) {
  case OpKind::Assign:
    return "assign";
  case OpKind::Add:
    return "add";
  case OpKind::Sub:
    return "sub";
  case OpKind::Mul:
    return "mul";
  case OpKind::Div:
    return "div";
  case OpKind::Max:
    return "max";
  case OpKind::Min:
    return "min";
  case OpKind::Relu:
    return "relu";
  case OpKind::Exp:
    return "exp";
  case OpKind::Rsqrt:
    return "rsqrt";
  case OpKind::Neg:
    return "neg";
  case OpKind::Fma:
    return "fma";
  case OpKind::MulSub:
    return "mulsub";
  }
  fatalError("unknown op kind");
}

std::string Kernel::verify() const {
  if (Stmts.empty())
    return "kernel has no statements";
  for (const Tensor &T : Tensors) {
    if (T.Name.empty())
      return "tensor with empty name";
    if (T.Shape.empty())
      return T.Name + ": tensor has no dimensions";
    for (Int E : T.Shape)
      if (E <= 0)
        return T.Name + ": nonpositive tensor extent";
    if (T.ElemBytes == 0)
      return T.Name + ": zero element size";
  }
  for (const Statement &S : Stmts) {
    if (S.Name.empty())
      return "statement with empty name";
    if (S.numIters() == 0)
      return S.Name + ": statement has no iterators";
    if (S.IterNames.size() != S.Extents.size())
      return S.Name + ": iterator name count differs from extent count";
    for (unsigned I = 0, E = S.numIters(); I != E; ++I)
      for (unsigned J = I + 1; J != E; ++J)
        if (S.IterNames[I] == S.IterNames[J])
          return S.Name + ": duplicate iterator '" + S.IterNames[I] + "'";
    if (S.OrigBeta.size() != S.numIters() + 1)
      return S.Name + ": beta vector must have numIters()+1 entries";
    if (S.Reads.size() != numOperands(S.Kind))
      return S.Name + ": operand count does not match op kind";
    for (Int E : S.Extents)
      if (E <= 0)
        return S.Name + ": nonpositive extent";
    std::vector<const Access *> All = S.allAccesses();
    for (const Access *A : All) {
      if (A->TensorId >= Tensors.size())
        return S.Name + ": access to unknown tensor";
      const Tensor &T = Tensors[A->TensorId];
      if (A->Indices.size() != T.Shape.size())
        return S.Name + ": access arity differs from tensor rank for " +
               T.Name;
      for (const IntVector &Index : A->Indices)
        if (Index.size() != rowWidth(S))
          return S.Name + ": index row width mismatch for " + T.Name;
    }
    if (!S.Write.IsWrite)
      return S.Name + ": write access not marked as write";
    for (const Access &R : S.Reads)
      if (R.IsWrite)
        return S.Name + ": read access marked as write";
  }
  return "";
}
