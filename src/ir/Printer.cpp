//===- ir/Printer.cpp -----------------------------------------------------===//

#include "ir/Printer.h"

#include <cctype>

using namespace pinj;

std::string pinj::printAffineRow(const IntVector &Row,
                                 const std::vector<std::string> &IterNames,
                                 const std::vector<std::string> &ParamNames) {
  assert(Row.size() == IterNames.size() + ParamNames.size() + 1 &&
         "row width mismatch");
  std::string S;
  auto appendTerm = [&S](Int Coeff, const std::string &Name) {
    if (Coeff == 0)
      return;
    if (!S.empty())
      S += Coeff > 0 ? " + " : " - ";
    else if (Coeff < 0)
      S += "-";
    Int Abs = Coeff < 0 ? -Coeff : Coeff;
    if (Abs != 1 || Name.empty())
      S += std::to_string(Abs) + (Name.empty() ? "" : "*");
    S += Name;
  };
  for (unsigned I = 0, E = IterNames.size(); I != E; ++I)
    appendTerm(Row[I], IterNames[I]);
  for (unsigned P = 0, E = ParamNames.size(); P != E; ++P)
    appendTerm(Row[IterNames.size() + P], ParamNames[P]);
  Int Const = Row.back();
  if (Const != 0 || S.empty()) {
    if (!S.empty())
      S += Const > 0 ? " + " : " - ";
    else if (Const < 0)
      S += "-";
    S += std::to_string(Const < 0 ? -Const : Const);
  }
  return S;
}

std::string pinj::printAccess(const Kernel &K, const Statement &S,
                              const Access &A) {
  std::string Out = K.Tensors[A.TensorId].Name;
  for (const IntVector &Index : A.Indices)
    Out += "[" + printAffineRow(Index, S.IterNames, K.ParamNames) + "]";
  return Out;
}

namespace {

/// Renders one access index row in `.pinj` index syntax ("i", "3",
/// "i+2"); nullopt when the row is not of that restricted form.
std::optional<std::string> printPinjIndex(const IntVector &Row,
                                          const Statement &S) {
  unsigned IterIdx = 0;
  unsigned NumIterTerms = 0;
  for (unsigned I = 0, E = S.numIters(); I != E; ++I) {
    if (Row[I] == 0)
      continue;
    if (Row[I] != 1)
      return std::nullopt; // Grammar has no coefficients.
    IterIdx = I;
    ++NumIterTerms;
  }
  Int Const = Row.back();
  if (NumIterTerms > 1 || Const < 0)
    return std::nullopt;
  if (NumIterTerms == 0)
    return std::to_string(Const);
  std::string Out = S.IterNames[IterIdx];
  if (Const != 0)
    Out += "+" + std::to_string(Const);
  return Out;
}

/// A `.pinj` token: no whitespace/comment/delimiter characters, and for
/// iterator names no '=' either (the grammar splits on it).
bool validPinjName(const std::string &Name, bool IsIter) {
  if (Name.empty())
    return false;
  for (char C : Name)
    if (std::isspace(static_cast<unsigned char>(C)) || C == '#' ||
        C == '[' || C == ']' || C == '\\' || (IsIter && C == '='))
      return false;
  return true;
}

std::optional<std::string> printPinjAccess(const Kernel &K,
                                           const Statement &S,
                                           const Access &A) {
  std::string Out = K.Tensors[A.TensorId].Name;
  for (const IntVector &Row : A.Indices) {
    std::optional<std::string> Index = printPinjIndex(Row, S);
    if (!Index)
      return std::nullopt;
    Out += "[" + *Index + "]";
  }
  return Out;
}

} // namespace

std::optional<std::string> pinj::printPinj(const Kernel &K,
                                           std::string &Error) {
  auto fail = [&Error](const std::string &Message) {
    Error = Message;
    return std::nullopt;
  };
  if (K.numParams())
    return fail("the .pinj grammar has no symbolic parameters");
  if (!validPinjName(K.Name, /*IsIter=*/false))
    return fail("kernel name is not a .pinj token: '" + K.Name + "'");

  std::string Out = "kernel " + K.Name + "\n";
  for (const Tensor &T : K.Tensors) {
    if (T.ElemBytes != 4)
      return fail("tensor '" + T.Name + "' is not float32");
    if (!validPinjName(T.Name, /*IsIter=*/false))
      return fail("tensor name is not a .pinj token: '" + T.Name + "'");
    Out += "tensor " + T.Name;
    for (Int E : T.Shape)
      Out += " " + std::to_string(E);
    Out += "\n";
  }
  for (unsigned I = 0, E = K.Stmts.size(); I != E; ++I) {
    const Statement &S = K.Stmts[I];
    // The parser rebuilds betas with the builder convention (statement
    // index prefix, own loop nest); anything else would not round-trip.
    std::vector<Int> BuilderBeta(S.numIters() + 1, 0);
    BuilderBeta[0] = static_cast<Int>(I);
    if (S.OrigBeta != BuilderBeta)
      return fail("statement '" + S.Name + "' has a non-builder beta");
    if (!validPinjName(S.Name, /*IsIter=*/false))
      return fail("statement name is not a .pinj token: '" + S.Name + "'");
    Out += "stmt " + S.Name + " iter";
    for (unsigned D = 0, N = S.numIters(); D != N; ++D) {
      if (!validPinjName(S.IterNames[D], /*IsIter=*/true))
        return fail("iterator name is not a .pinj token: '" +
                    S.IterNames[D] + "'");
      Out += " " + S.IterNames[D] + "=" + std::to_string(S.Extents[D]);
    }
    Out += " op ";
    Out += opKindName(S.Kind);
    std::optional<std::string> W = printPinjAccess(K, S, S.Write);
    if (!W)
      return fail("write of '" + S.Name +
                  "' uses an index the .pinj grammar cannot express");
    Out += " write " + *W;
    for (const Access &R : S.Reads) {
      std::optional<std::string> A = printPinjAccess(K, S, R);
      if (!A)
        return fail("read of '" + S.Name +
                    "' uses an index the .pinj grammar cannot express");
      Out += " read " + *A;
    }
    Out += "\n";
  }
  return Out;
}

std::string pinj::printKernel(const Kernel &K) {
  std::string Out;
  for (const Statement &S : K.Stmts) {
    std::string Indent;
    for (unsigned D = 0, E = S.numIters(); D != E; ++D) {
      Out += Indent + "for (" + S.IterNames[D] + " = 0; " + S.IterNames[D] +
             " < " + std::to_string(S.Extents[D]) + "; " + S.IterNames[D] +
             "++)\n";
      Indent += "  ";
    }
    Out += Indent + S.Name + ": " + printAccess(K, S, S.Write) + " = " +
           opKindName(S.Kind) + "(";
    for (unsigned R = 0, E = S.Reads.size(); R != E; ++R) {
      if (R != 0)
        Out += ", ";
      Out += printAccess(K, S, S.Reads[R]);
    }
    Out += ");\n";
  }
  return Out;
}
