//===- ir/Printer.cpp -----------------------------------------------------===//

#include "ir/Printer.h"

using namespace pinj;

std::string pinj::printAffineRow(const IntVector &Row,
                                 const std::vector<std::string> &IterNames,
                                 const std::vector<std::string> &ParamNames) {
  assert(Row.size() == IterNames.size() + ParamNames.size() + 1 &&
         "row width mismatch");
  std::string S;
  auto appendTerm = [&S](Int Coeff, const std::string &Name) {
    if (Coeff == 0)
      return;
    if (!S.empty())
      S += Coeff > 0 ? " + " : " - ";
    else if (Coeff < 0)
      S += "-";
    Int Abs = Coeff < 0 ? -Coeff : Coeff;
    if (Abs != 1 || Name.empty())
      S += std::to_string(Abs) + (Name.empty() ? "" : "*");
    S += Name;
  };
  for (unsigned I = 0, E = IterNames.size(); I != E; ++I)
    appendTerm(Row[I], IterNames[I]);
  for (unsigned P = 0, E = ParamNames.size(); P != E; ++P)
    appendTerm(Row[IterNames.size() + P], ParamNames[P]);
  Int Const = Row.back();
  if (Const != 0 || S.empty()) {
    if (!S.empty())
      S += Const > 0 ? " + " : " - ";
    else if (Const < 0)
      S += "-";
    S += std::to_string(Const < 0 ? -Const : Const);
  }
  return S;
}

std::string pinj::printAccess(const Kernel &K, const Statement &S,
                              const Access &A) {
  std::string Out = K.Tensors[A.TensorId].Name;
  for (const IntVector &Index : A.Indices)
    Out += "[" + printAffineRow(Index, S.IterNames, K.ParamNames) + "]";
  return Out;
}

std::string pinj::printKernel(const Kernel &K) {
  std::string Out;
  for (const Statement &S : K.Stmts) {
    std::string Indent;
    for (unsigned D = 0, E = S.numIters(); D != E; ++D) {
      Out += Indent + "for (" + S.IterNames[D] + " = 0; " + S.IterNames[D] +
             " < " + std::to_string(S.Extents[D]) + "; " + S.IterNames[D] +
             "++)\n";
      Indent += "  ";
    }
    Out += Indent + S.Name + ": " + printAccess(K, S, S.Write) + " = " +
           opKindName(S.Kind) + "(";
    for (unsigned R = 0, E = S.Reads.size(); R != E; ++R) {
      if (R != 0)
        Out += ", ";
      Out += printAccess(K, S, S.Reads[R]);
    }
    Out += ");\n";
  }
  return Out;
}
