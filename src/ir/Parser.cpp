//===- ir/Parser.cpp ------------------------------------------------------===//

#include "ir/Parser.h"

#include "ir/Builder.h"

#include <cctype>
#include <map>
#include <sstream>

using namespace pinj;

std::optional<OpKind> pinj::parseOpKind(const std::string &Name) {
  static const std::map<std::string, OpKind> Kinds = {
      {"assign", OpKind::Assign}, {"add", OpKind::Add},
      {"sub", OpKind::Sub},       {"mul", OpKind::Mul},
      {"div", OpKind::Div},       {"max", OpKind::Max},
      {"min", OpKind::Min},       {"relu", OpKind::Relu},
      {"exp", OpKind::Exp},       {"rsqrt", OpKind::Rsqrt},
      {"neg", OpKind::Neg},       {"fma", OpKind::Fma},
      {"mulsub", OpKind::MulSub},
  };
  auto It = Kinds.find(Name);
  if (It == Kinds.end())
    return std::nullopt;
  return It->second;
}

namespace {

/// Parses one index expression: "i", "3" or "i+2".
std::optional<IndexExpr> parseIndexExpr(const std::string &Text) {
  if (Text.empty())
    return std::nullopt;
  size_t Plus = Text.find('+');
  std::string Base = Text.substr(0, Plus);
  Int Offset = 0;
  if (Plus != std::string::npos) {
    std::string Tail = Text.substr(Plus + 1);
    if (Tail.empty() || Tail.size() > 18 ||
        Tail.find_first_not_of("0123456789") != std::string::npos)
      return std::nullopt;
    Offset = std::stoll(Tail);
  }
  if (Base.empty())
    return std::nullopt;
  if (std::isdigit(static_cast<unsigned char>(Base[0]))) {
    if (Base.size() > 18 ||
        Base.find_first_not_of("0123456789") != std::string::npos ||
        Plus != std::string::npos)
      return std::nullopt;
    return IndexExpr(static_cast<Int>(std::stoll(Base)));
  }
  IndexExpr E(Base.c_str());
  return E + Offset;
}

/// Parses "NAME[idx][idx]..." into tensor name + index expressions.
bool parseAccess(const std::string &Text, std::string &TensorName,
                 std::vector<IndexExpr> &Indices) {
  size_t Open = Text.find('[');
  if (Open == std::string::npos || Open == 0)
    return false;
  TensorName = Text.substr(0, Open);
  size_t Pos = Open;
  while (Pos < Text.size()) {
    if (Text[Pos] != '[')
      return false;
    size_t Close = Text.find(']', Pos);
    if (Close == std::string::npos)
      return false;
    std::optional<IndexExpr> E =
        parseIndexExpr(Text.substr(Pos + 1, Close - Pos - 1));
    if (!E)
      return false;
    Indices.push_back(*E);
    Pos = Close + 1;
  }
  return true;
}

} // namespace

std::optional<Kernel> pinj::parseKernel(const std::string &Text,
                                        std::string &Error) {
  std::map<std::string, unsigned> TensorIds;
  KernelBuilder Builder("kernel");
  bool NamedKernel = false;
  bool AnyStmt = false;

  // Join continued lines, strip comments.
  std::vector<std::pair<unsigned, std::string>> Lines;
  {
    std::istringstream In(Text);
    std::string Raw;
    unsigned LineNo = 0, StartLine = 0;
    std::string Joined;
    while (std::getline(In, Raw)) {
      ++LineNo;
      size_t Hash = Raw.find('#');
      if (Hash != std::string::npos)
        Raw = Raw.substr(0, Hash);
      bool Continued = false;
      size_t End = Raw.find_last_not_of(" \t");
      if (End != std::string::npos && Raw[End] == '\\') {
        Raw = Raw.substr(0, End);
        Continued = true;
      }
      if (Joined.empty())
        StartLine = LineNo;
      Joined += Raw + " ";
      if (Continued)
        continue;
      if (Joined.find_first_not_of(" \t") != std::string::npos)
        Lines.emplace_back(StartLine, Joined);
      Joined.clear();
    }
    if (!Joined.empty() &&
        Joined.find_first_not_of(" \t") != std::string::npos)
      Lines.emplace_back(StartLine, Joined);
  }

  auto fail = [&Error](unsigned Line, const std::string &Message) {
    Error = "line " + std::to_string(Line) + ": " + Message;
    return std::nullopt;
  };

  for (auto &[LineNo, Line] : Lines) {
    std::istringstream Tokens(Line);
    std::string Keyword;
    Tokens >> Keyword;
    if (Keyword == "kernel") {
      std::string Name;
      if (!(Tokens >> Name))
        return fail(LineNo, "kernel needs a name");
      if (NamedKernel)
        return fail(LineNo, "duplicate kernel line");
      NamedKernel = true;
      Builder = KernelBuilder(Name);
      TensorIds.clear();
      continue;
    }
    if (Keyword == "tensor") {
      std::string Name;
      if (!(Tokens >> Name))
        return fail(LineNo, "tensor needs a name");
      if (TensorIds.count(Name))
        return fail(LineNo, "duplicate tensor '" + Name + "'");
      std::vector<Int> Shape;
      Int Extent;
      while (Tokens >> Extent) {
        if (Extent <= 0)
          return fail(LineNo, "tensor extents must be positive");
        Shape.push_back(Extent);
      }
      if (Shape.empty())
        return fail(LineNo, "tensor needs at least one extent");
      TensorIds[Name] = Builder.tensor(Name, std::move(Shape));
      continue;
    }
    if (Keyword == "stmt") {
      std::string Name, Section;
      if (!(Tokens >> Name) || !(Tokens >> Section) || Section != "iter")
        return fail(LineNo, "expected: stmt NAME iter i=EXTENT ...");
      std::vector<std::pair<std::string, Int>> Iters;
      std::string Token;
      OpKind Kind = OpKind::Assign;
      bool HaveOp = false;
      while (Tokens >> Token && Token != "op") {
        size_t Eq = Token.find('=');
        if (Eq == std::string::npos || Eq == 0)
          return fail(LineNo, "iterator must be name=extent: " + Token);
        std::string ExtentText = Token.substr(Eq + 1);
        if (ExtentText.empty() ||
            ExtentText.find_first_not_of("0123456789") != std::string::npos ||
            ExtentText.size() > 18)
          return fail(LineNo, "malformed iterator extent: " + Token);
        Int Extent = std::stoll(ExtentText);
        if (Extent <= 0)
          return fail(LineNo, "iterator extents must be positive");
        Iters.emplace_back(Token.substr(0, Eq), Extent);
      }
      if (Token == "op") {
        std::string OpName;
        if (!(Tokens >> OpName))
          return fail(LineNo, "op needs a mnemonic");
        std::optional<OpKind> Parsed = parseOpKind(OpName);
        if (!Parsed)
          return fail(LineNo, "unknown op '" + OpName + "'");
        Kind = *Parsed;
        HaveOp = true;
      }
      if (Iters.empty())
        return fail(LineNo, "statement needs at least one iterator");
      if (!HaveOp)
        return fail(LineNo, "statement needs an op");

      Builder.stmt(Name, Iters).op(Kind);
      bool HaveWrite = false;
      unsigned NumReads = 0;
      std::string What;
      while (Tokens >> What) {
        std::string AccessText;
        if (!(Tokens >> AccessText))
          return fail(LineNo, What + " needs an access");
        std::string TensorName;
        std::vector<IndexExpr> Indices;
        if (!parseAccess(AccessText, TensorName, Indices))
          return fail(LineNo, "malformed access: " + AccessText);
        auto It = TensorIds.find(TensorName);
        if (It == TensorIds.end())
          return fail(LineNo, "unknown tensor '" + TensorName + "'");
        try {
          if (What == "write") {
            if (HaveWrite)
              return fail(LineNo, "statement has two writes");
            Builder.write(It->second, std::move(Indices));
            HaveWrite = true;
          } else if (What == "read") {
            Builder.read(It->second, std::move(Indices));
            ++NumReads;
          } else {
            return fail(LineNo, "expected 'write' or 'read', got " + What);
          }
        } catch (const RecoverableError &E) {
          return fail(LineNo, E.status().message());
        }
      }
      if (!HaveWrite)
        return fail(LineNo, "statement needs a write");
      if (NumReads != numOperands(Kind))
        return fail(LineNo, "op expects " +
                                std::to_string(numOperands(Kind)) +
                                " reads, got " + std::to_string(NumReads));
      AnyStmt = true;
      continue;
    }
    return fail(LineNo, "unknown keyword '" + Keyword + "'");
  }
  if (!AnyStmt) {
    Error = "kernel has no statements";
    return std::nullopt;
  }
  // build() runs Kernel::verify() and raises InvalidInput on anything the
  // line-by-line checks above missed (access arity, tensor shapes, ...).
  try {
    return Builder.build();
  } catch (const RecoverableError &E) {
    Error = E.status().message();
    return std::nullopt;
  }
}
