//===- ir/Printer.h - Textual dump of kernels -------------------*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pretty-prints kernels as C-like pseudo-code, in the style of the
/// paper's Fig. 2(a).
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_IR_PRINTER_H
#define POLYINJECT_IR_PRINTER_H

#include "ir/Kernel.h"

#include <optional>
#include <string>

namespace pinj {

/// Renders an affine row over (IterNames, ParamNames, 1) as e.g. "i + 2".
std::string printAffineRow(const IntVector &Row,
                           const std::vector<std::string> &IterNames,
                           const std::vector<std::string> &ParamNames);

/// Renders one access, e.g. "D[k][i][j]".
std::string printAccess(const Kernel &K, const Statement &S, const Access &A);

/// Renders the whole kernel as nested pseudo-code loops.
std::string printKernel(const Kernel &K);

/// Renders \p K in the `.pinj` text format ir/Parser.cpp accepts, so
/// `parseKernel(printPinj(K))` reproduces the kernel structurally (same
/// fingerprint; see service/Fingerprint.h). \returns nullopt and sets
/// \p Error when the kernel uses features the grammar cannot express:
/// symbolic parameters, non-float32 tensors, index expressions other
/// than `i`, `c` or `i+c` with c >= 0, or non-builder beta vectors.
std::optional<std::string> printPinj(const Kernel &K, std::string &Error);

} // namespace pinj

#endif // POLYINJECT_IR_PRINTER_H
