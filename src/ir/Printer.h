//===- ir/Printer.h - Textual dump of kernels -------------------*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pretty-prints kernels as C-like pseudo-code, in the style of the
/// paper's Fig. 2(a).
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_IR_PRINTER_H
#define POLYINJECT_IR_PRINTER_H

#include "ir/Kernel.h"

#include <string>

namespace pinj {

/// Renders an affine row over (IterNames, ParamNames, 1) as e.g. "i + 2".
std::string printAffineRow(const IntVector &Row,
                           const std::vector<std::string> &IterNames,
                           const std::vector<std::string> &ParamNames);

/// Renders one access, e.g. "D[k][i][j]".
std::string printAccess(const Kernel &K, const Statement &S, const Access &A);

/// Renders the whole kernel as nested pseudo-code loops.
std::string printKernel(const Kernel &K);

} // namespace pinj

#endif // POLYINJECT_IR_PRINTER_H
