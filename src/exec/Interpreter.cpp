//===- exec/Interpreter.cpp -----------------------------------------------===//

#include "exec/Interpreter.h"

#include "support/FailPoint.h"
#include "support/Status.h"

#include <algorithm>
#include <cmath>

using namespace pinj;

namespace {

double applyOp(OpKind Kind, const double *R) {
  switch (Kind) {
  case OpKind::Assign:
    return R[0];
  case OpKind::Add:
    return R[0] + R[1];
  case OpKind::Sub:
    return R[0] - R[1];
  case OpKind::Mul:
    return R[0] * R[1];
  case OpKind::Div:
    return R[0] / R[1];
  case OpKind::Max:
    return std::max(R[0], R[1]);
  case OpKind::Min:
    return std::min(R[0], R[1]);
  case OpKind::Relu:
    return std::max(R[0], 0.0);
  case OpKind::Exp:
    return std::exp(R[0]);
  case OpKind::Rsqrt:
    return 1.0 / std::sqrt(std::abs(R[0]) + 1.0);
  case OpKind::Neg:
    return -R[0];
  case OpKind::Fma:
    return R[0] + R[1] * R[2];
  case OpKind::MulSub:
    return (R[0] - R[1]) * R[2];
  }
  fatalError("unknown op kind");
}

/// Flattened element offset of \p A for iteration \p Iters.
Int flattenAccess(const Kernel &K, const Statement &S, const Access &A,
                  const IntVector &Iters) {
  const Tensor &T = K.Tensors[A.TensorId];
  std::vector<Int> Strides = T.strides();
  Int Offset = 0;
  for (unsigned D = 0, E = A.Indices.size(); D != E; ++D) {
    const IntVector &Row = A.Indices[D];
    Int Index = Row.back();
    for (unsigned I = 0, NI = S.numIters(); I != NI; ++I)
      Index += Row[I] * Iters[I];
    if (Index < 0 || Index >= T.Shape[D])
      raiseError(StatusCode::Internal, "exec.interpret",
                 "access out of bounds during interpretation");
    Offset += Index * Strides[D];
  }
  return Offset;
}

void executeInstance(const Kernel &K, unsigned Stmt, const IntVector &Iters,
                     ExecBuffers &Buffers) {
  const Statement &S = K.Stmts[Stmt];
  double Reads[3] = {0, 0, 0};
  for (unsigned R = 0, E = S.Reads.size(); R != E; ++R)
    Reads[R] = Buffers.Tensors[S.Reads[R].TensorId]
                   [flattenAccess(K, S, S.Reads[R], Iters)];
  Buffers.Tensors[S.Write.TensorId][flattenAccess(K, S, S.Write, Iters)] =
      applyOp(S.Kind, Reads);
}

/// Walks the full iteration domain of \p S in row-major (original) order.
template <typename Fn>
void forEachIteration(const Statement &S, Fn &&Callback) {
  IntVector Iters(S.numIters(), 0);
  for (;;) {
    Callback(Iters);
    unsigned D = S.numIters();
    while (D-- > 0) {
      if (++Iters[D] < S.Extents[D])
        break;
      Iters[D] = 0;
      if (D == 0)
        return;
    }
    if (S.numIters() == 0)
      return;
  }
}

} // namespace

ExecBuffers pinj::makeInputs(const Kernel &K, unsigned Seed) {
  ExecBuffers Buffers;
  unsigned State = Seed * 2654435761u + 12345u;
  for (const Tensor &T : K.Tensors) {
    std::vector<double> Data(T.numElements());
    for (double &V : Data) {
      State = State * 1664525u + 1013904223u;
      V = static_cast<double>((State >> 8) % 2048) / 256.0 - 4.0;
    }
    Buffers.Tensors.push_back(std::move(Data));
  }
  return Buffers;
}

void pinj::runOriginal(const Kernel &K, ExecBuffers &Buffers) {
  for (unsigned Stmt = 0, E = K.Stmts.size(); Stmt != E; ++Stmt)
    forEachIteration(K.Stmts[Stmt], [&](const IntVector &Iters) {
      executeInstance(K, Stmt, Iters, Buffers);
    });
}

void pinj::runScheduled(const Kernel &K, const Schedule &S,
                        ExecBuffers &Buffers) {
  struct Instance {
    IntVector Date;
    unsigned Stmt;
    IntVector Iters;
  };
  std::vector<Instance> Instances;
  for (unsigned Stmt = 0, E = K.Stmts.size(); Stmt != E; ++Stmt)
    forEachIteration(K.Stmts[Stmt], [&](const IntVector &Iters) {
      Instances.push_back({S.apply(K, Stmt, Iters, {}), Stmt, Iters});
    });
  std::stable_sort(Instances.begin(), Instances.end(),
                   [](const Instance &A, const Instance &B) {
                     if (A.Date != B.Date)
                       return A.Date < B.Date;
                     if (A.Stmt != B.Stmt)
                       return A.Stmt < B.Stmt;
                     return A.Iters < B.Iters;
                   });
  for (const Instance &I : Instances)
    executeInstance(K, I.Stmt, I.Iters, Buffers);
}

bool pinj::buffersAlmostEqual(const ExecBuffers &A, const ExecBuffers &B,
                              double Tolerance) {
  if (A.Tensors.size() != B.Tensors.size())
    return false;
  for (unsigned T = 0, E = A.Tensors.size(); T != E; ++T) {
    if (A.Tensors[T].size() != B.Tensors[T].size())
      return false;
    for (unsigned I = 0, N = A.Tensors[T].size(); I != N; ++I) {
      double X = A.Tensors[T][I], Y = B.Tensors[T][I];
      double Scale = std::max({1.0, std::abs(X), std::abs(Y)});
      if (std::abs(X - Y) > Tolerance * Scale)
        return false;
    }
  }
  return true;
}

bool pinj::scheduleIsSemanticallyEqual(const Kernel &K, const Schedule &S,
                                       unsigned Seed) {
  failpoint::hit("exec.interpret");
  ExecBuffers Reference = makeInputs(K, Seed);
  ExecBuffers Transformed = Reference;
  runOriginal(K, Reference);
  runScheduled(K, S, Transformed);
  return buffersAlmostEqual(Reference, Transformed);
}
