//===- exec/Interpreter.h - Reference and scheduled execution ---*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sequential interpreter over real buffers. Running a kernel in its
/// original statement/loop order and in the order dictated by a schedule
/// (sorting every statement instance by its multidimensional logical
/// date) and comparing the outputs validates end to end that a schedule
/// preserves the program semantics.
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_EXEC_INTERPRETER_H
#define POLYINJECT_EXEC_INTERPRETER_H

#include "ir/Kernel.h"
#include "sched/Schedule.h"

namespace pinj {

/// One buffer per kernel tensor, in declaration order.
struct ExecBuffers {
  std::vector<std::vector<double>> Tensors;
};

/// Allocates buffers for \p K and fills them with a deterministic
/// pseudo-random pattern derived from \p Seed.
ExecBuffers makeInputs(const Kernel &K, unsigned Seed);

/// Executes \p K in the original program order.
void runOriginal(const Kernel &K, ExecBuffers &Buffers);

/// Executes \p K in the order defined by \p S (all statement instances
/// sorted by logical date; ties are semantically unordered and broken
/// deterministically).
void runScheduled(const Kernel &K, const Schedule &S, ExecBuffers &Buffers);

/// Elementwise comparison with relative/absolute tolerance.
bool buffersAlmostEqual(const ExecBuffers &A, const ExecBuffers &B,
                        double Tolerance = 1e-9);

/// Convenience: returns true if executing \p K under \p S produces the
/// same buffers as the original order for a seeded random input.
bool scheduleIsSemanticallyEqual(const Kernel &K, const Schedule &S,
                                 unsigned Seed = 1);

} // namespace pinj

#endif // POLYINJECT_EXEC_INTERPRETER_H
