//===- bench/bench_fig2.cpp - Reproduces the paper's Fig. 2 ---------------===//
//
// Prints the running example (fused_mul_sub_mul_tensoradd from BERT) in
// its three forms: the initial pseudo-code (Fig. 2(a)), the reference
// polyhedral schedule that distributes the nests and keeps the
// inefficient D access (Fig. 2(b)), and the influenced schedule with the
// fused nest and the vectorizable innermost j loop (Fig. 2(c)), together
// with the simulated execution times of both GPU mappings.
//
//===----------------------------------------------------------------------===//

#include "codegen/Ast.h"
#include "codegen/Vectorizer.h"
#include "exec/Interpreter.h"
#include "influence/TreeBuilder.h"
#include "ir/Printer.h"
#include "obs/Metrics.h"
#include "ops/OpFactory.h"
#include "pipeline/Pipeline.h"

#include <cstdio>

using namespace pinj;

int main() {
  const Int N = 64;
  Kernel K = makeFusedMulSubMulTensorAdd(N);
  PipelineOptions Options;

  std::printf("FIG. 2(a): initial pseudo-code (N = %lld)\n\n%s\n",
              static_cast<long long>(N), printKernel(K).c_str());

  // Fig. 2(b): the reference configuration.
  SchedulerOptions Isl = Options.Sched;
  Isl.SerializeSccs = true;
  SchedulerResult IslRun = scheduleKernel(K, Isl);
  finalizeVectorMarks(K, IslRun.Sched, /*DisableVectorization=*/true);
  MappedKernel IslMapped = mapToGpu(K, IslRun.Sched, Options.Mapping);
  std::printf("FIG. 2(b): reference polyhedral schedule (isl-like)\n\n");
  std::printf("%s\n%s\n", IslRun.Sched.str(K).c_str(),
              printAst(IslMapped).c_str());

  // Fig. 2(c): the influenced schedule.
  SchedulerResult InflRun = scheduleInfluenced(K, Options);
  finalizeVectorMarks(K, InflRun.Sched);
  MappedKernel InflMapped = mapToGpu(K, InflRun.Sched, Options.Mapping);
  std::printf("FIG. 2(c): influenced schedule (constraint injection)\n\n");
  std::printf("%s\n%s\n", InflRun.Sched.str(K).c_str(),
              printAst(InflMapped).c_str());

  std::printf("Generated CUDA-like kernel for Fig. 2(c):\n\n%s\n",
              printCuda(InflMapped).c_str());

  // Semantics check and simulated comparison.
  bool IslOk = scheduleIsSemanticallyEqual(K, IslRun.Sched);
  bool InflOk = scheduleIsSemanticallyEqual(K, InflRun.Sched);
  KernelSim IslSim = simulateKernel(IslMapped, Options.Gpu);
  KernelSim InflSim = simulateKernel(InflMapped, Options.Gpu);
  std::printf("semantics preserved: isl=%s infl=%s\n", IslOk ? "yes" : "NO",
              InflOk ? "yes" : "NO");
  std::printf("simulated time: isl=%.2fus infl=%.2fus (speedup %.2fx)\n",
              IslSim.TimeUs, InflSim.TimeUs,
              IslSim.TimeUs / InflSim.TimeUs);
  std::printf("memory transactions: isl=%.0f infl=%.0f; memory "
              "instructions: isl=%.0f infl=%.0f\n",
              IslSim.Transactions, InflSim.Transactions,
              IslSim.MemInstructions, InflSim.MemInstructions);
  std::printf("\nprocess metrics\n%s",
              obs::metrics().snapshot().table().c_str());
  return (IslOk && InflOk) ? 0 : 1;
}
