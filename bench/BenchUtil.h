//===- bench/BenchUtil.h - Shared helpers for the bench binaries -*- C++ -*-===//

#ifndef POLYINJECT_BENCH_BENCHUTIL_H
#define POLYINJECT_BENCH_BENCHUTIL_H

#include "ops/Networks.h"
#include "ops/OpFactory.h"
#include "pipeline/Pipeline.h"

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

namespace pinj {

/// Aggregated measurements for one network suite.
struct SuiteResult {
  std::string Name;
  unsigned Total = 0;
  unsigned Vec = 0;
  unsigned Infl = 0;
  // Times in milliseconds, all operators.
  double IslMs = 0, TvmMs = 0, NovecMs = 0, InflMs = 0;
  // Times in milliseconds, influenced operators only.
  double IslInflMs = 0, TvmInflMs = 0, NovecInflMs = 0, InflInflMs = 0;
};

inline SuiteResult measureSuite(const NetworkSuite &Suite,
                                const PipelineOptions &Options) {
  SuiteResult R;
  R.Name = Suite.Name;
  for (const Kernel &K : Suite.Operators) {
    OperatorReport Report = runOperator(K, Options);
    ++R.Total;
    R.Infl += Report.Influenced;
    R.Vec += Report.Influenced && Report.VecEligible;
    R.IslMs += Report.Isl.TimeUs / 1000.0;
    R.TvmMs += Report.Tvm.TimeUs / 1000.0;
    R.NovecMs += Report.Novec.TimeUs / 1000.0;
    R.InflMs += Report.Infl.TimeUs / 1000.0;
    if (Report.Influenced) {
      R.IslInflMs += Report.Isl.TimeUs / 1000.0;
      R.TvmInflMs += Report.Tvm.TimeUs / 1000.0;
      R.NovecInflMs += Report.Novec.TimeUs / 1000.0;
      R.InflInflMs += Report.Infl.TimeUs / 1000.0;
    }
  }
  return R;
}

/// Operator families shared by the perf benchmarks: four structurally
/// different shapes (fusable chain, hostile layout, the paper's fused
/// tensor expression, a reduce tail) parameterized by problem size.
inline Kernel kernelForFamily(int Family, Int N) {
  switch (Family) {
  case 0:
    return makeElementwiseChain("chain", N, N - 1, 4, 1);
  case 1:
    return makeHostileOrderCopy("hostile", N, N, 1);
  case 2:
    return makeFusedMulSubMulTensorAdd(N);
  default:
    return makeReduceTail("reduce", N, N, 1);
  }
}

inline const char *familyName(int Family) {
  switch (Family) {
  case 0:
    return "chain";
  case 1:
    return "hostile";
  case 2:
    return "fused";
  default:
    return "reduce";
  }
}

/// The same corpus pinj-gen emits (tools/kernels/), built in-process.
/// Shared by the autotuning benchmarks (bench_tune, bench_surrogate) so
/// their gates measure the same operator population. \p Limit truncates
/// to the first N operators (0 keeps all).
inline std::vector<Kernel> tuneBenchCorpus(unsigned Limit) {
  std::vector<Kernel> Corpus;
  Corpus.push_back(makeFusedMulSubMulTensorAdd(64));
  Corpus.push_back(makeFusedMulSubMulTensorAdd(96));
  Corpus.push_back(makeElementwiseChain("ew_chain_short", 64, 128, 2, 1));
  Corpus.push_back(makeElementwiseChain("ew_chain_mid", 96, 96, 4, 2));
  Corpus.push_back(makeElementwiseChain("ew_chain_long", 64, 192, 6, 3));
  Corpus.push_back(makeElementwiseChain("ew_chain_wide", 32, 256, 3, 4));
  Corpus.push_back(makeBiasActivation("bias_relu", 64, 128, 1));
  Corpus.push_back(makeBiasActivation("bias_act_2", 96, 64, 2));
  Corpus.push_back(makeBiasActivation("bias_act_3", 128, 96, 3));
  Corpus.push_back(makeHostileOrderCopy("hostile_copy_a", 64, 96, 1));
  Corpus.push_back(makeHostileOrderCopy("hostile_copy_b", 96, 128, 2));
  Corpus.push_back(
      makeHostileOrderPermute3D("hostile_permute_a", 8, 32, 48, 1));
  Corpus.push_back(
      makeHostileOrderPermute3D("hostile_permute_b", 16, 24, 32, 2));
  Corpus.push_back(makeMiddlePermuted3D("middle_permuted_a", 8, 24, 64, 1));
  Corpus.push_back(makeMiddlePermuted3D("middle_permuted_b", 12, 16, 96, 2));
  Corpus.push_back(makeReduceTail("reduce_tail_a", 64, 128, 1));
  Corpus.push_back(makeReduceTail("reduce_tail_b", 96, 96, 2));
  Corpus.push_back(makeSoftmaxLike("softmax_like_a", 48, 96));
  Corpus.push_back(makeSoftmaxLike("softmax_like_b", 64, 64));
  Corpus.push_back(makeProducerConsumerPair("prodcons_a", 64, 96, 1));
  Corpus.push_back(makeProducerConsumerPair("prodcons_b", 96, 64, 2));
  Corpus.push_back(makeElementwiseChain("ew_chain_tail", 48, 160, 5, 5));
  if (Limit && Limit < Corpus.size())
    Corpus.resize(Limit);
  return Corpus;
}

inline double geomean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0;
  double LogSum = 0;
  for (double V : Values)
    LogSum += std::log(V);
  return std::exp(LogSum / Values.size());
}

} // namespace pinj

#endif // POLYINJECT_BENCH_BENCHUTIL_H
