//===- bench/BenchUtil.h - Shared helpers for the bench binaries -*- C++ -*-===//

#ifndef POLYINJECT_BENCH_BENCHUTIL_H
#define POLYINJECT_BENCH_BENCHUTIL_H

#include "ops/Networks.h"
#include "ops/OpFactory.h"
#include "pipeline/Pipeline.h"

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

namespace pinj {

/// Aggregated measurements for one network suite.
struct SuiteResult {
  std::string Name;
  unsigned Total = 0;
  unsigned Vec = 0;
  unsigned Infl = 0;
  // Times in milliseconds, all operators.
  double IslMs = 0, TvmMs = 0, NovecMs = 0, InflMs = 0;
  // Times in milliseconds, influenced operators only.
  double IslInflMs = 0, TvmInflMs = 0, NovecInflMs = 0, InflInflMs = 0;
};

inline SuiteResult measureSuite(const NetworkSuite &Suite,
                                const PipelineOptions &Options) {
  SuiteResult R;
  R.Name = Suite.Name;
  for (const Kernel &K : Suite.Operators) {
    OperatorReport Report = runOperator(K, Options);
    ++R.Total;
    R.Infl += Report.Influenced;
    R.Vec += Report.Influenced && Report.VecEligible;
    R.IslMs += Report.Isl.TimeUs / 1000.0;
    R.TvmMs += Report.Tvm.TimeUs / 1000.0;
    R.NovecMs += Report.Novec.TimeUs / 1000.0;
    R.InflMs += Report.Infl.TimeUs / 1000.0;
    if (Report.Influenced) {
      R.IslInflMs += Report.Isl.TimeUs / 1000.0;
      R.TvmInflMs += Report.Tvm.TimeUs / 1000.0;
      R.NovecInflMs += Report.Novec.TimeUs / 1000.0;
      R.InflInflMs += Report.Infl.TimeUs / 1000.0;
    }
  }
  return R;
}

/// Operator families shared by the perf benchmarks: four structurally
/// different shapes (fusable chain, hostile layout, the paper's fused
/// tensor expression, a reduce tail) parameterized by problem size.
inline Kernel kernelForFamily(int Family, Int N) {
  switch (Family) {
  case 0:
    return makeElementwiseChain("chain", N, N - 1, 4, 1);
  case 1:
    return makeHostileOrderCopy("hostile", N, N, 1);
  case 2:
    return makeFusedMulSubMulTensorAdd(N);
  default:
    return makeReduceTail("reduce", N, N, 1);
  }
}

inline const char *familyName(int Family) {
  switch (Family) {
  case 0:
    return "chain";
  case 1:
    return "hostile";
  case 2:
    return "fused";
  default:
    return "reduce";
  }
}

inline double geomean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0;
  double LogSum = 0;
  for (double V : Values)
    LogSum += std::log(V);
  return std::exp(LogSum / Values.size());
}

} // namespace pinj

#endif // POLYINJECT_BENCH_BENCHUTIL_H
