//===- bench/bench_lp.cpp - Exact LP core speedup gate --------------------===//
//
// Times the rewritten LP core (small-int rational fast path, flat
// tableau, warm-started lexmin levels) against the retained reference
// solver (lp/Reference.h: always-128-bit rationals, per-node problem
// copies, cold solves at every level) on the lexicographic ILPs the
// scheduler actually emits, checks the results are identical, and gates
// on the geometric-mean wall-clock speedup.
//
//   bench_lp [--json=FILE] [--min-speedup=X] [--reps=N]
//
// The JSON is the benchmark trajectory consumed by CI:
//   {"cases": [{"name", "reference_ms", "fast_ms", "speedup"}, ...],
//    "geomean_speedup": X, "gate": Y, "pass": true|false}
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "lp/Reference.h"
#include "poly/Dependence.h"
#include "sched/ConstraintBuilders.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace pinj;

namespace {

struct LexCase {
  std::string Name;
  IlpProblem Problem;
  std::vector<LexObjective> Levels;
};

/// Builds the dimension-0 scheduling ILP for \p K exactly as the
/// scheduler's Construction::attempt does: progression for every
/// statement, validity for every active relation, proximity for the
/// flow relations, then the full lexicographic objective stack.
LexCase makeSchedulingCase(std::string Name, const Kernel &K) {
  SchedulerOptions Options;
  std::vector<DependenceRelation> Deps = computeDependences(K);
  Schedule Partial;
  Partial.Transforms.assign(K.Stmts.size(), IntMatrix());
  for (unsigned S = 0, E = K.Stmts.size(); S != E; ++S)
    Partial.Transforms[S] = IntMatrix(0, K.rowWidth(K.Stmts[S]));

  DimIlp Ilp = makeDimIlp(K, Options);
  for (unsigned S = 0, E = K.Stmts.size(); S != E; ++S)
    addProgression(Ilp, K, Partial, S);
  for (const DependenceRelation &D : Deps)
    if (D.constrainsValidity())
      addValidity(Ilp, K, D);
  for (const DependenceRelation &D : Deps)
    if (D.constrainsValidity() && D.Kind == DepKind::Flow)
      addProximity(Ilp, K, D);
  addObjectives(Ilp, K, Options);

  LexCase Case;
  Case.Name = std::move(Name);
  std::tie(Case.Problem, Case.Levels) = Ilp.Builder.materialize();
  return Case;
}

double toMs(std::chrono::steady_clock::duration D) {
  return std::chrono::duration<double, std::milli>(D).count();
}

template <typename Fn> double timeBestOf(unsigned Reps, Fn &&Run) {
  double Best = 0;
  for (unsigned R = 0; R != Reps; ++R) {
    auto Start = std::chrono::steady_clock::now();
    Run();
    double Ms = toMs(std::chrono::steady_clock::now() - Start);
    if (R == 0 || Ms < Best)
      Best = Ms;
  }
  return Best;
}

bool sameResult(const IlpResult &A, const IlpResult &B) {
  if (A.Status != B.Status)
    return false;
  if (A.Status != IlpResult::Optimal)
    return true;
  if (!(A.Value == B.Value) || A.Point.size() != B.Point.size())
    return false;
  for (unsigned V = 0, E = A.Point.size(); V != E; ++V)
    if (!(A.Point[V] == B.Point[V]))
      return false;
  return true;
}

} // namespace

int main(int argc, char **argv) {
  const char *JsonPath = nullptr;
  double MinSpeedup = 2.0;
  unsigned Reps = 3;
  for (int A = 1; A != argc; ++A) {
    if (!std::strncmp(argv[A], "--json=", 7))
      JsonPath = argv[A] + 7;
    else if (!std::strncmp(argv[A], "--min-speedup=", 14))
      MinSpeedup = std::atof(argv[A] + 14);
    else if (!std::strncmp(argv[A], "--reps=", 7))
      Reps = std::atoi(argv[A] + 7);
    else {
      std::fprintf(stderr,
                   "usage: %s [--json=FILE] [--min-speedup=X] [--reps=N]\n",
                   argv[0]);
      return 2;
    }
  }

  std::vector<LexCase> Cases;
  for (int Family = 0; Family != 4; ++Family)
    for (Int N : {32, 64, 128}) {
      std::string Name = std::string(familyName(Family)) + "_" +
                         std::to_string(static_cast<long long>(N));
      Cases.push_back(makeSchedulingCase(Name, kernelForFamily(Family, N)));
    }
  Cases.push_back(
      makeSchedulingCase("bias_act_3", makeBiasActivation("bias", 128, 96, 3)));
  Cases.push_back(makeSchedulingCase(
      "ew_chain_long", makeElementwiseChain("chain", 64, 192, 6, 3)));

  struct Measured {
    std::string Name;
    double ReferenceMs = 0, FastMs = 0;
  };
  std::vector<Measured> Rows;
  std::vector<double> Speedups;
  bool Mismatch = false;

  for (const LexCase &C : Cases) {
    IlpResult Ref = referenceSolveLexMin(C.Problem, C.Levels);
    IlpResult Fast = solveLexMin(C.Problem, C.Levels);
    if (!sameResult(Ref, Fast)) {
      std::fprintf(stderr, "FAIL %s: solvers disagree (status %d vs %d)\n",
                   C.Name.c_str(), static_cast<int>(Ref.Status),
                   static_cast<int>(Fast.Status));
      Mismatch = true;
      continue;
    }
    Measured M;
    M.Name = C.Name;
    M.ReferenceMs = timeBestOf(
        Reps, [&] { referenceSolveLexMin(C.Problem, C.Levels); });
    M.FastMs = timeBestOf(Reps, [&] { solveLexMin(C.Problem, C.Levels); });
    Rows.push_back(M);
    double Speedup = M.FastMs > 0 ? M.ReferenceMs / M.FastMs : 1.0;
    Speedups.push_back(Speedup);
    std::printf("%-16s reference %8.3f ms  fast %8.3f ms  speedup %6.2fx\n",
                M.Name.c_str(), M.ReferenceMs, M.FastMs, Speedup);
  }

  double Geomean = geomean(Speedups);
  bool Pass = !Mismatch && !Rows.empty() && Geomean >= MinSpeedup;
  std::printf("geomean speedup: %.2fx (gate %.2fx) -> %s\n", Geomean,
              MinSpeedup, Pass ? "PASS" : "FAIL");

  if (JsonPath) {
    std::FILE *F = std::fopen(JsonPath, "w");
    if (!F) {
      std::fprintf(stderr, "cannot write %s\n", JsonPath);
      return 2;
    }
    std::fprintf(F, "{\n  \"cases\": [\n");
    for (unsigned R = 0, E = Rows.size(); R != E; ++R)
      std::fprintf(F,
                   "    {\"name\": \"%s\", \"reference_ms\": %.4f, "
                   "\"fast_ms\": %.4f, \"speedup\": %.3f}%s\n",
                   Rows[R].Name.c_str(), Rows[R].ReferenceMs, Rows[R].FastMs,
                   Rows[R].ReferenceMs / (Rows[R].FastMs > 0 ? Rows[R].FastMs
                                                             : 1.0),
                   R + 1 == E ? "" : ",");
    std::fprintf(F,
                 "  ],\n  \"geomean_speedup\": %.3f,\n  \"gate\": %.2f,\n"
                 "  \"pass\": %s\n}\n",
                 Geomean, MinSpeedup, Pass ? "true" : "false");
    std::fclose(F);
  }
  return Pass ? 0 : 1;
}
