//===- bench/bench_service.cpp - Compilation-service benchmark ------------===//
//
// Measures what the compilation service (src/service/) buys on the
// generated operator corpus:
//
//   1. cache value — the same batch compiled cold (empty cache), warm
//      from disk (fresh process memory, entries on disk) and warm from
//      memory, with the hit counts and the speedup over cold;
//   2. worker scaling — cold batch wall time for 1/2/4/8 workers.
//
// Everything here is compilation time (scheduling + simulation of the
// analytic model); there is no GPU in the loop. Run from anywhere:
//
//   bench_service [--ops=N]   (default: the full factory corpus)
//
//===----------------------------------------------------------------------===//

#include "ops/OpFactory.h"
#include "service/BatchCompiler.h"
#include "service/Cache.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <thread>
#include <vector>

using namespace pinj;

namespace {

double nowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The same corpus pinj-gen emits (tools/kernels/), built in-process so
/// the benchmark has no file dependencies.
std::vector<service::BatchJob> buildJobs(unsigned Limit) {
  std::vector<Kernel> Corpus;
  Corpus.push_back(makeFusedMulSubMulTensorAdd(64));
  Corpus.push_back(makeFusedMulSubMulTensorAdd(96));
  Corpus.push_back(makeElementwiseChain("ew_chain_short", 64, 128, 2, 1));
  Corpus.push_back(makeElementwiseChain("ew_chain_mid", 96, 96, 4, 2));
  Corpus.push_back(makeElementwiseChain("ew_chain_long", 64, 192, 6, 3));
  Corpus.push_back(makeElementwiseChain("ew_chain_wide", 32, 256, 3, 4));
  Corpus.push_back(makeBiasActivation("bias_relu", 64, 128, 1));
  Corpus.push_back(makeBiasActivation("bias_act_2", 96, 64, 2));
  Corpus.push_back(makeBiasActivation("bias_act_3", 128, 96, 3));
  Corpus.push_back(makeHostileOrderCopy("hostile_copy_a", 64, 96, 1));
  Corpus.push_back(makeHostileOrderCopy("hostile_copy_b", 96, 128, 2));
  Corpus.push_back(
      makeHostileOrderPermute3D("hostile_permute_a", 8, 32, 48, 1));
  Corpus.push_back(
      makeHostileOrderPermute3D("hostile_permute_b", 16, 24, 32, 2));
  Corpus.push_back(makeMiddlePermuted3D("middle_permuted_a", 8, 24, 64, 1));
  Corpus.push_back(makeMiddlePermuted3D("middle_permuted_b", 12, 16, 96, 2));
  Corpus.push_back(makeReduceTail("reduce_tail_a", 64, 128, 1));
  Corpus.push_back(makeReduceTail("reduce_tail_b", 96, 96, 2));
  Corpus.push_back(makeSoftmaxLike("softmax_like_a", 48, 96));
  Corpus.push_back(makeSoftmaxLike("softmax_like_b", 64, 64));
  Corpus.push_back(makeProducerConsumerPair("prodcons_a", 64, 96, 1));
  Corpus.push_back(makeProducerConsumerPair("prodcons_b", 96, 64, 2));
  Corpus.push_back(makeElementwiseChain("ew_chain_tail", 48, 160, 5, 5));
  if (Limit && Limit < Corpus.size())
    Corpus.resize(Limit);
  std::vector<service::BatchJob> Jobs;
  Jobs.reserve(Corpus.size());
  for (Kernel &K : Corpus)
    Jobs.push_back(service::BatchJob{std::move(K)});
  return Jobs;
}

double runBatchMs(const std::vector<service::BatchJob> &Jobs,
                  PipelineOptions Options, unsigned Workers,
                  std::size_t *Hits = nullptr) {
  service::BatchCompiler Compiler(Options, Workers);
  double Start = nowMs();
  service::BatchResult R = Compiler.run(Jobs);
  double Elapsed = nowMs() - Start;
  if (Hits)
    *Hits = R.hits();
  return Elapsed;
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Limit = 0;
  for (int I = 1; I != Argc; ++I)
    if (std::strncmp(Argv[I], "--ops=", 6) == 0)
      Limit = static_cast<unsigned>(std::strtoul(Argv[I] + 6, nullptr, 10));

  std::vector<service::BatchJob> Jobs = buildJobs(Limit);
  std::printf("compilation service benchmark: %zu operators\n\n",
              Jobs.size());

  namespace fs = std::filesystem;
  fs::path DiskDir =
      fs::temp_directory_path() / "polyinject_bench_service_cache";
  std::error_code Ec;
  fs::remove_all(DiskDir, Ec);

  // --- Cache value (single worker, so the times isolate the cache). ---
  service::ScheduleCache::Config CacheCfg;
  CacheCfg.DiskDir = DiskDir.string();
  PipelineOptions Options;

  service::ScheduleCache ColdCache(CacheCfg);
  Options.Cache = &ColdCache;
  std::size_t Hits = 0;
  double ColdMs = runBatchMs(Jobs, Options, 1, &Hits);
  std::printf("  cold   (empty cache)        %8.1f ms   %2zu hits\n",
              ColdMs, Hits);

  // A fresh cache object over the same directory: memory is empty, every
  // lookup is served by deserializing the on-disk entry.
  service::ScheduleCache DiskCache(CacheCfg);
  Options.Cache = &DiskCache;
  double DiskMs = runBatchMs(Jobs, Options, 1, &Hits);
  std::printf("  warm   (disk, %2zu hits)      %8.1f ms   %5.1fx vs cold\n",
              Hits, DiskMs, DiskMs > 0 ? ColdMs / DiskMs : 0.0);

  // Same object again: now every hit is an in-memory LRU hit.
  double MemMs = runBatchMs(Jobs, Options, 1, &Hits);
  std::printf("  warm   (memory, %2zu hits)    %8.1f ms   %5.1fx vs cold\n",
              Hits, MemMs, MemMs > 0 ? ColdMs / MemMs : 0.0);

  bool CacheOk = DiskMs * 5 <= ColdMs;
  std::printf("\n  warm-from-disk speedup %s the 5x bar\n",
              CacheOk ? "meets" : "MISSES");

  // --- Worker scaling (cold caches so every job schedules). ---
  // Interpreting these numbers needs the core count: on a single-core
  // host every pool size serializes and threading is pure overhead.
  std::printf("\nworker scaling (no cache, %u hardware threads):\n",
              std::thread::hardware_concurrency());
  PipelineOptions Uncached;
  double BaseMs = 0;
  for (unsigned W : {1u, 2u, 4u, 8u}) {
    double Ms = runBatchMs(Jobs, Uncached, W);
    if (W == 1)
      BaseMs = Ms;
    std::printf("  jobs=%u  %8.1f ms   %4.2fx vs jobs=1\n", W, Ms,
                Ms > 0 ? BaseMs / Ms : 0.0);
  }

  fs::remove_all(DiskDir, Ec);
  return CacheOk ? 0 : 1;
}
