//===- bench/bench_fig3.cpp - Reproduces the paper's Fig. 3 ---------------===//
//
// Builds and prints the influence constraint tree the non-linear
// optimizer constructs for the running example: prioritized branches
// (fusion-first, then relaxed variants), per-depth constraint sets on
// the scheduling coefficients, and the vector mark on the innermost
// node. Then reports which branch the scheduler realizes (the paper's
// example: the first, fused branch succeeds).
//
//===----------------------------------------------------------------------===//

#include "influence/TreeBuilder.h"
#include "ir/Printer.h"
#include "ops/OpFactory.h"
#include "sched/Scheduler.h"

#include <cstdio>

using namespace pinj;

int main() {
  Kernel K = makeFusedMulSubMulTensorAdd(64);
  std::printf("Input operator:\n\n%s\n", printKernel(K).c_str());

  InfluenceOptions Options;
  InfluenceTree Tree = buildInfluenceTree(K, Options);
  std::printf("FIG. 3: influence constraint tree (branches in priority "
              "order)\n\n%s\n",
              Tree.str(K).c_str());

  SchedulerOptions Sched;
  SchedulerResult R = scheduleKernel(K, Sched, &Tree);
  if (R.ReachedLeaf) {
    std::printf("scheduler realized branch leaf: '%s'\n",
                R.ReachedLeaf->Label.c_str());
  } else {
    std::printf("no branch feasible; plain scheduling used\n");
  }
  std::printf("backtracking: sibling moves=%u ancestor backtracks=%u "
              "band breaks=%u scc cuts=%u (ILP solves=%u, failures=%u)\n",
              R.Stats.SiblingMoves, R.Stats.AncestorBacktracks,
              R.Stats.BandBreaks, R.Stats.SccCuts, R.Stats.IlpSolves,
              R.Stats.IlpFailures);
  std::printf("\nResulting schedule:\n%s", R.Sched.str(K).c_str());
  return 0;
}
