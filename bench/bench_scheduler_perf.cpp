//===- bench/bench_scheduler_perf.cpp - Scheduler wall-clock cost ----------===//
//
// google-benchmark timings of the scheduling construction itself (the
// production concern behind the paper's integration in MindSpore/AKG):
// plain vs influenced scheduling across operator families and sizes,
// plus dependence analysis and the non-linear tree construction alone.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "influence/TreeBuilder.h"
#include "sched/Scheduler.h"

#include <benchmark/benchmark.h>

using namespace pinj;

namespace {

void BM_DependenceAnalysis(benchmark::State &State) {
  Kernel K = kernelForFamily(State.range(0), State.range(1));
  for (auto _ : State)
    benchmark::DoNotOptimize(computeDependences(K));
}

void BM_PlainScheduling(benchmark::State &State) {
  Kernel K = kernelForFamily(State.range(0), State.range(1));
  SchedulerOptions Options;
  Options.SerializeSccs = true;
  for (auto _ : State)
    benchmark::DoNotOptimize(scheduleKernel(K, Options));
}

void BM_TreeConstruction(benchmark::State &State) {
  Kernel K = kernelForFamily(State.range(0), State.range(1));
  for (auto _ : State)
    benchmark::DoNotOptimize(buildInfluenceTree(K, InfluenceOptions()));
}

void BM_InfluencedScheduling(benchmark::State &State) {
  Kernel K = kernelForFamily(State.range(0), State.range(1));
  InfluenceTree Tree = buildInfluenceTree(K, InfluenceOptions());
  SchedulerOptions Options;
  for (auto _ : State)
    benchmark::DoNotOptimize(scheduleKernel(K, Options, &Tree));
}

void BM_ChainSchedulingByLength(benchmark::State &State) {
  Kernel K = makeElementwiseChain("chain", 64, 63,
                                  static_cast<unsigned>(State.range(0)), 1);
  SchedulerOptions Options;
  Options.SerializeSccs = true;
  for (auto _ : State)
    benchmark::DoNotOptimize(scheduleKernel(K, Options));
  State.SetComplexityN(State.range(0));
}

void familyArgs(benchmark::internal::Benchmark *B) {
  for (int Family = 0; Family != 4; ++Family)
    for (Int N : {32, 64, 128})
      B->Args({Family, N});
}

} // namespace

BENCHMARK(BM_DependenceAnalysis)->Apply(familyArgs)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_PlainScheduling)->Apply(familyArgs)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TreeConstruction)->Apply(familyArgs)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_InfluencedScheduling)->Apply(familyArgs)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ChainSchedulingByLength)
    ->DenseRange(2, 10, 2)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

BENCHMARK_MAIN();
