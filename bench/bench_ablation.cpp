//===- bench/bench_ablation.cpp - Design-choice ablations ------------------===//
//
// Sweeps the design parameters the paper's Section V fixes empirically:
//   (1) the cost weight vector w (paper best: (5, 3, 1, 1, 1), with
//       vectorization weights dominating),
//   (2) the two readings of the thread-contribution term (the printed
//       formula w5*F*L/N vs the prose w5*F*N/L; see DESIGN.md),
//   (3) the number of scenarios kept when building the tree (paper: 8),
//   (4) the scheduler's coefficient bound (the bounded nonnegative
//       coefficient space).
// Reported metric: geomean simulated speedup of infl over isl across a
// representative operator set.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "ops/OpFactory.h"

using namespace pinj;

namespace {

std::vector<Kernel> representativeOps() {
  std::vector<Kernel> Ops;
  Ops.push_back(makeFusedMulSubMulTensorAdd(64));
  Ops.push_back(makeHostileOrderCopy("tr2d", 1024, 1024, 1));
  Ops.push_back(makeHostileOrderPermute3D("tr3d", 32, 256, 512, 2));
  Ops.push_back(makeElementwiseChain("chain", 256, 256, 4, 3));
  Ops.push_back(makeMiddlePermuted3D("mid", 32, 56, 128, 4));
  Ops.push_back(makeReduceTail("red", 256, 512, 5));
  Ops.push_back(makeSoftmaxLike("softmax", 256, 256));
  return Ops;
}

double geomeanSpeedup(const PipelineOptions &Options) {
  std::vector<double> Speedups;
  for (const Kernel &K : representativeOps()) {
    OperatorReport R = runOperator(K, Options);
    Speedups.push_back(R.Isl.TimeUs / R.Infl.TimeUs);
  }
  return geomean(Speedups);
}

} // namespace

int main() {
  std::printf("Ablations (geomean infl speedup over isl on %zu "
              "representative operators)\n\n",
              representativeOps().size());

  // (1) Weight vector sweep.
  struct WeightConfig {
    const char *Name;
    double W1, W2, W3, W4, W5;
  };
  const WeightConfig Weights[] = {
      {"paper (5,3,1,1,1)", 5, 3, 1, 1, 1},
      {"no vector pref (0,0,1,1,1)", 0, 0, 1, 1, 1},
      {"loads first (3,5,1,1,1)", 3, 5, 1, 1, 1},
      {"stride only (0,0,1,0,0)", 0, 0, 1, 0, 0},
      {"uniform (1,1,1,1,1)", 1, 1, 1, 1, 1},
      {"heavy vector (10,6,1,1,1)", 10, 6, 1, 1, 1},
  };
  std::printf("weight vector sweep:\n");
  for (const WeightConfig &W : Weights) {
    PipelineOptions Options;
    Options.Influence.Weights.W1 = W.W1;
    Options.Influence.Weights.W2 = W.W2;
    Options.Influence.Weights.W3 = W.W3;
    Options.Influence.Weights.W4 = W.W4;
    Options.Influence.Weights.W5 = W.W5;
    std::printf("  %-28s %.3fx\n", W.Name, geomeanSpeedup(Options));
  }

  // (2) Thread-term reading.
  std::printf("\nthread-contribution term:\n");
  for (bool PaperFormula : {false, true}) {
    PipelineOptions Options;
    Options.Influence.Weights.PaperFormulaThreadTerm = PaperFormula;
    std::printf("  %-28s %.3fx\n",
                PaperFormula ? "printed formula w5*F*L/N"
                             : "prose reading w5*F*N/L",
                geomeanSpeedup(Options));
  }

  // (3) Scenario count.
  std::printf("\nscenarios kept (paper: 8):\n");
  for (unsigned MaxScenarios : {1u, 2u, 4u, 8u}) {
    PipelineOptions Options;
    Options.Influence.MaxScenarios = MaxScenarios;
    std::printf("  %-28u %.3fx\n", MaxScenarios, geomeanSpeedup(Options));
  }

  // (4) Scheduling coefficient bound.
  std::printf("\ncoefficient bound:\n");
  for (Int Bound : {1, 2, 4, 8}) {
    PipelineOptions Options;
    Options.Sched.CoeffBound = Bound;
    std::printf("  %-28lld %.3fx\n", static_cast<long long>(Bound),
                geomeanSpeedup(Options));
  }
  return 0;
}
