//===- bench/bench_surrogate.cpp - Surrogate autotuning gate --------------===//
//
// Measures what the learned cost model (src/model/) buys the autotuner:
// a surrogate-guided search that ranks the whole space with the model
// and gpusim-evaluates only the top-K candidates must match exhaustive
// search quality at a fraction of the evaluation cost. The run trains
// the model in-process on the shared tuning corpus, then tunes every
// operator twice — full exhaustive search vs surrogate top-K — and
// gates:
//
//   1. evaluation savings — the surrogate pass must spend at least 5x
//      fewer full evaluator scorings (tune.evaluations) than the
//      exhaustive pass;
//   2. quality parity — the corpus geomean of the surrogate's tuned
//      times must stay within 0.5% of the exhaustive geomean
//      (exhaustive is optimal per operator, so the ratio is >= 1 by
//      construction and only the upper bound binds);
//   3. never worse — every surrogate-tuned operator simulates at or
//      below the paper-default options;
//   4. determinism — surrogate encodings are byte-identical across
//      --jobs=1 and --jobs=8 evaluator parallelism.
//
// Everything is the analytic cost model; there is no GPU in the loop.
//
//   bench_surrogate [--json=FILE] [--ops=N] [--topk=K] [--candidates=N]
//                   [--rounds=N]
//
// The JSON artifact (BENCH_tune_surrogate.json in CI) records per-op
// times plus the aggregate evaluation counts and ratios.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "model/Dataset.h"
#include "model/GbStumps.h"
#include "obs/Metrics.h"
#include "tune/Autotuner.h"
#include "tune/Evaluator.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace pinj;

namespace {

struct OpRow {
  std::string Name;
  double BaselineUs = 0;
  double ExhaustiveUs = 0;
  double SurrogateUs = 0;
  std::string Encoding; ///< Surrogate choice at --jobs=1.
};

struct PassResult {
  std::vector<double> TunedUs;
  std::vector<std::string> Encodings;
  std::uint64_t Evaluations = 0;
  double WallMs = 0;
};

/// Tunes every corpus operator with one Autotuner configuration and
/// returns per-op tuned times/encodings plus the tune.evaluations
/// delta the pass cost.
PassResult runPass(const std::vector<Kernel> &Corpus,
                   tune::Autotuner::Config Cfg) {
  PassResult R;
  obs::MetricsSnapshot Before = obs::metrics().snapshot();
  auto Start = std::chrono::steady_clock::now();
  tune::Autotuner Tuner(std::move(Cfg));
  for (const Kernel &K : Corpus) {
    PipelineOptions Tuned;
    TunedConfig Chosen;
    Tuner.tune(K, Tuned, Chosen);
    R.TunedUs.push_back(tune::predictInflTimeUs(K, Tuned));
    R.Encodings.push_back(Chosen.Encoding);
  }
  R.WallMs = std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - Start)
                 .count();
  R.Evaluations =
      obs::metrics().snapshot().since(Before).counter("tune.evaluations");
  return R;
}

} // namespace

int main(int Argc, char **Argv) {
  const char *JsonPath = nullptr;
  unsigned Limit = 0;
  std::size_t TopK = 8;
  std::size_t Candidates = 48;
  unsigned Rounds = 400;
  for (int I = 1; I != Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strncmp(Arg, "--json=", 7) == 0)
      JsonPath = Arg + 7;
    else if (std::strncmp(Arg, "--ops=", 6) == 0)
      Limit = static_cast<unsigned>(std::strtoul(Arg + 6, nullptr, 10));
    else if (std::strncmp(Arg, "--topk=", 7) == 0)
      TopK = std::strtoull(Arg + 7, nullptr, 10);
    else if (std::strncmp(Arg, "--candidates=", 13) == 0)
      Candidates = std::strtoull(Arg + 13, nullptr, 10);
    else if (std::strncmp(Arg, "--rounds=", 9) == 0)
      Rounds = static_cast<unsigned>(std::strtoul(Arg + 9, nullptr, 10));
    else {
      std::fprintf(stderr,
                   "usage: bench_surrogate [--json=FILE] [--ops=N] "
                   "[--topk=K] [--candidates=N] [--rounds=N]\n");
      return 2;
    }
  }
  if (TopK == 0 || Candidates == 0) {
    std::fprintf(stderr, "--topk and --candidates must be positive\n");
    return 2;
  }

  std::vector<Kernel> Corpus = tuneBenchCorpus(Limit);
  tune::SearchSpace Space = tune::defaultSearchSpace();
  unsigned Jobs = std::max(1u, std::thread::hardware_concurrency());

  std::printf("surrogate gate: %zu operators, space %zu candidates, "
              "top-%zu, jobs=%u\n\n",
              Corpus.size(), Space.size(), TopK, Jobs);

  // ---- Train the cost model on the corpus (offline in production;
  // ---- here in-process so the gate is self-contained). --------------
  auto TrainStart = std::chrono::steady_clock::now();
  model::Dataset Data;
  {
    model::DatasetBuildConfig BuildCfg;
    BuildCfg.CandidatesPerKernel = Candidates;
    BuildCfg.Jobs = Jobs;
    for (const Kernel &K : Corpus)
      model::appendSamples(Data, K, PipelineOptions(), Space, nullptr,
                           BuildCfg);
  }
  if (Data.Samples.empty()) {
    std::printf("GATE FAIL: dataset build produced no samples\n");
    return 1;
  }
  std::vector<model::FeatureVector> X;
  std::vector<double> Y;
  X.reserve(Data.Samples.size());
  Y.reserve(Data.Samples.size());
  for (const model::Sample &S : Data.Samples) {
    X.push_back(S.X);
    Y.push_back(model::regressionTarget(S.TimeUs));
  }
  model::TrainConfig TC;
  TC.Rounds = Rounds;
  auto Model = std::make_shared<const model::GbStumpsModel>(
      model::trainGbStumps(X, Y, TC));
  double TrainMs = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - TrainStart)
                       .count();
  std::printf("trained on %zu samples (%zu stumps, %.1f ms)\n\n",
              Data.Samples.size(), Model->Stumps.size(), TrainMs);

  // ---- Exhaustive reference pass. -----------------------------------
  tune::Autotuner::Config ExCfg;
  ExCfg.Strategy = "exhaustive";
  ExCfg.MaxEvaluations = Space.size() + 1; // whole space + baseline
  ExCfg.Jobs = Jobs;
  PassResult Ex = runPass(Corpus, ExCfg);

  // ---- Surrogate passes: --jobs=1 and --jobs=8 must agree. ----------
  tune::Autotuner::Config SuCfg;
  SuCfg.Strategy = "surrogate";
  SuCfg.MaxEvaluations = Space.size() + 1;
  SuCfg.Model = Model;
  SuCfg.TopK = TopK;
  SuCfg.Jobs = 1;
  PassResult Su = runPass(Corpus, SuCfg);
  SuCfg.Jobs = 8;
  PassResult Su8 = runPass(Corpus, SuCfg);

  // ---- Per-op table + gates. ----------------------------------------
  std::vector<OpRow> Rows;
  bool NeverWorseViolated = false;
  bool JobsDiverged = false;
  std::vector<double> Ratios;
  for (std::size_t I = 0; I != Corpus.size(); ++I) {
    OpRow R;
    R.Name = Corpus[I].Name;
    R.BaselineUs = tune::predictInflTimeUs(Corpus[I], PipelineOptions());
    R.ExhaustiveUs = Ex.TunedUs[I];
    R.SurrogateUs = Su.TunedUs[I];
    R.Encoding = Su.Encodings[I];
    if (R.SurrogateUs > R.BaselineUs * (1 + 1e-9)) {
      std::printf("FAIL %-22s surrogate %.3f us > baseline %.3f us\n",
                  R.Name.c_str(), R.SurrogateUs, R.BaselineUs);
      NeverWorseViolated = true;
    }
    if (Su.Encodings[I] != Su8.Encodings[I]) {
      std::printf("FAIL %-22s encoding differs across jobs: '%s' vs '%s'\n",
                  R.Name.c_str(), Su.Encodings[I].c_str(),
                  Su8.Encodings[I].c_str());
      JobsDiverged = true;
    }
    if (R.ExhaustiveUs > 0)
      Ratios.push_back(R.SurrogateUs / R.ExhaustiveUs);
    std::printf("%-22s baseline %8.3f  exhaustive %8.3f  surrogate "
                "%8.3f us  %s\n",
                R.Name.c_str(), R.BaselineUs, R.ExhaustiveUs, R.SurrogateUs,
                R.Encoding == "baseline" ? "-" : R.Encoding.c_str());
    Rows.push_back(std::move(R));
  }

  double GeoRatio = geomean(Ratios);
  double EvalRatio =
      Su.Evaluations ? double(Ex.Evaluations) / double(Su.Evaluations) : 0;
  obs::MetricsSnapshot Final = obs::metrics().snapshot();
  std::printf("\nexhaustive: %llu evaluations, %.1f ms\n",
              static_cast<unsigned long long>(Ex.Evaluations), Ex.WallMs);
  std::printf("surrogate:  %llu evaluations, %.1f ms (%llu predictions, "
              "%llu evals saved)\n",
              static_cast<unsigned long long>(Su.Evaluations), Su.WallMs,
              static_cast<unsigned long long>(
                  Final.counter("model.predictions")),
              static_cast<unsigned long long>(
                  Final.counter("tune.surrogate_evals_saved")));
  std::printf("eval ratio %.1fx, geomean quality ratio %.5f\n", EvalRatio,
              GeoRatio);

  // ---- Gates. -------------------------------------------------------
  int Failures = 0;
  if (NeverWorseViolated) {
    std::printf("GATE FAIL: a surrogate config was worse than baseline\n");
    ++Failures;
  }
  if (EvalRatio < 5.0) {
    std::printf("GATE FAIL: eval ratio %.1fx below 5x (%llu vs %llu)\n",
                EvalRatio, static_cast<unsigned long long>(Ex.Evaluations),
                static_cast<unsigned long long>(Su.Evaluations));
    ++Failures;
  }
  if (Ratios.empty() || GeoRatio > 1.005) {
    std::printf("GATE FAIL: geomean quality ratio %.5f outside 0.5%% of "
                "exhaustive\n",
                GeoRatio);
    ++Failures;
  }
  if (JobsDiverged) {
    std::printf("GATE FAIL: surrogate choice depends on --jobs\n");
    ++Failures;
  }
  bool Pass = Failures == 0;
  if (Pass)
    std::printf("all surrogate gates passed\n");

  if (JsonPath) {
    std::FILE *F = std::fopen(JsonPath, "w");
    if (!F) {
      std::fprintf(stderr, "cannot write %s\n", JsonPath);
      return 2;
    }
    std::fprintf(F, "{\n  \"ops\": [\n");
    for (std::size_t I = 0; I != Rows.size(); ++I)
      std::fprintf(F,
                   "    {\"name\": \"%s\", \"baseline_us\": %.6f, "
                   "\"exhaustive_us\": %.6f, \"surrogate_us\": %.6f, "
                   "\"encoding\": \"%s\"}%s\n",
                   Rows[I].Name.c_str(), Rows[I].BaselineUs,
                   Rows[I].ExhaustiveUs, Rows[I].SurrogateUs,
                   Rows[I].Encoding.c_str(),
                   I + 1 == Rows.size() ? "" : ",");
    std::fprintf(F,
                 "  ],\n  \"space_size\": %zu,\n  \"topk\": %zu,\n"
                 "  \"train_samples\": %zu,\n  \"model_stumps\": %zu,\n"
                 "  \"exhaustive_evals\": %llu,\n"
                 "  \"surrogate_evals\": %llu,\n"
                 "  \"eval_ratio\": %.3f,\n  \"geomean_ratio\": %.6f,\n"
                 "  \"pass\": %s\n}\n",
                 Space.size(), TopK, Data.Samples.size(),
                 Model->Stumps.size(),
                 static_cast<unsigned long long>(Ex.Evaluations),
                 static_cast<unsigned long long>(Su.Evaluations), EvalRatio,
                 GeoRatio, Pass ? "true" : "false");
    std::fclose(F);
    std::printf("wrote %s\n", JsonPath);
  }
  return Pass ? 0 : 1;
}
