//===- bench/bench_table2.cpp - Reproduces the paper's Table II -----------===//
//
// Runs every fused operator of the seven network suites through the
// four configurations (isl / tvm / novec / infl) on the simulated
// V100-like GPU and prints the paper's Table II: operator counts,
// execution times and speedups over isl, for all operators and for the
// influenced subset, plus the geomean headline.
//
// Absolute times come from an analytic simulator, not the authors'
// testbed; the reproduction target is the table's *shape* (see
// EXPERIMENTS.md).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "obs/Metrics.h"

using namespace pinj;

namespace {

struct PaperRow {
  const char *Network;
  unsigned Total, Vec, Infl;
  double Tvm, Novec, Infl2; // Speedups over isl, all operators.
  double TvmI, NovecI, InflI; // Speedups, influenced only.
};

const PaperRow PaperRows[] = {
    {"BERT", 109, 53, 53, 0.18, 0.95, 1.05, 1.01, 0.86, 1.15},
    {"LSTM", 4, 3, 3, 0.94, 1.00, 1.05, 0.94, 1.00, 1.05},
    {"MobileNetv2", 18, 16, 16, 0.99, 0.99, 1.02, 0.99, 0.99, 1.02},
    {"ResNet50", 17, 10, 12, 3.07, 3.05, 3.43, 5.14, 4.72, 5.93},
    {"ResNet101", 22, 14, 16, 6.94, 6.75, 7.70, 11.31, 10.07, 12.53},
    {"ResNeXt50", 33, 21, 22, 1.13, 1.23, 1.36, 1.19, 1.35, 1.56},
    {"VGG16", 14, 9, 10, 1.09, 1.26, 1.42, 1.09, 1.28, 1.45},
};

} // namespace

int main() {
  PipelineOptions Options;

  std::printf("TABLE II (reproduced): FUSED OPERATORS EXECUTION TIMES "
              "(simulated V100)\n\n");
  std::printf("%-12s | %5s %4s %5s | %9s %9s %9s %9s | %6s %6s %6s\n",
              "Network", "total", "vec", "infl", "isl(ms)", "tvm(ms)",
              "novec(ms)", "infl(ms)", "tvm", "novec", "infl");
  std::printf("%.*s\n", 118,
              "------------------------------------------------------------"
              "------------------------------------------------------------");

  std::vector<double> InflSpeedups;
  std::vector<SuiteResult> Results;
  for (const std::string &Name : allNetworkNames()) {
    NetworkSuite Suite = makeNetworkSuite(Name);
    SuiteResult R = measureSuite(Suite, Options);
    Results.push_back(R);
    std::printf(
        "%-12s | %5u %4u %5u | %9.3f %9.3f %9.3f %9.3f | %6.2f %6.2f "
        "%6.2f\n",
        R.Name.c_str(), R.Total, R.Vec, R.Infl, R.IslMs, R.TvmMs, R.NovecMs,
        R.InflMs, R.IslMs / R.TvmMs, R.IslMs / R.NovecMs,
        R.IslMs / R.InflMs);
    InflSpeedups.push_back(R.IslMs / R.InflMs);
  }

  std::printf("\nInfluenced fused operators only:\n");
  std::printf("%-12s | %9s %9s %9s %9s | %6s %6s %6s\n", "Network",
              "isl(ms)", "tvm(ms)", "novec(ms)", "infl(ms)", "tvm", "novec",
              "infl");
  for (const SuiteResult &R : Results) {
    if (R.Infl == 0)
      continue;
    std::printf(
        "%-12s | %9.3f %9.3f %9.3f %9.3f | %6.2f %6.2f %6.2f\n",
        R.Name.c_str(), R.IslInflMs, R.TvmInflMs, R.NovecInflMs,
        R.InflInflMs, R.IslInflMs / R.TvmInflMs,
        R.IslInflMs / R.NovecInflMs, R.IslInflMs / R.InflInflMs);
  }

  std::printf("\nGeomean infl speedup over isl (all operators): %.2fx "
              "(paper: 1.7x geomean improvement)\n",
              geomean(InflSpeedups));

  std::printf("\nPaper's Table II for comparison (speedups over isl):\n");
  std::printf("%-12s | %5s %4s %5s | %6s %6s %6s | infl-only: %6s %6s "
              "%6s\n",
              "Network", "total", "vec", "infl", "tvm", "novec", "infl",
              "tvm", "novec", "infl");
  for (const PaperRow &Row : PaperRows)
    std::printf("%-12s | %5u %4u %5u | %6.2f %6.2f %6.2f |            "
                "%6.2f %6.2f %6.2f\n",
                Row.Network, Row.Total, Row.Vec, Row.Infl, Row.Tvm,
                Row.Novec, Row.Infl2, Row.TvmI, Row.NovecI, Row.InflI);

  std::printf("\nProcess metrics across all suites:\n%s",
              obs::metrics().snapshot().table().c_str());
  return 0;
}
