//===- bench/bench_backtracking.cpp - Scheduler fallback statistics -------===//
//
// Substantiates the paper's Section IV-B observation that "in the
// context of AI/DL fused operators ... we could observe only few
// activations of the backtracking": runs influenced scheduling over
// every operator of every network suite and reports the aggregate
// fallback counters of Algorithm 1.
//
//===----------------------------------------------------------------------===//

#include "influence/TreeBuilder.h"
#include "ops/Networks.h"
#include "sched/Scheduler.h"

#include <cstdio>

using namespace pinj;

int main() {
  std::printf("%-12s | %5s | %8s %8s | %8s %8s %8s %8s %5s\n", "Network",
              "ops", "solves", "failures", "sibling", "ancestor", "band",
              "scc", "aband");
  unsigned TotalOps = 0;
  SchedulerStats Total;
  unsigned TotalAbandoned = 0;
  for (const std::string &Name : allNetworkNames()) {
    NetworkSuite Suite = makeNetworkSuite(Name);
    SchedulerStats Agg;
    unsigned Abandoned = 0;
    for (const Kernel &K : Suite.Operators) {
      InfluenceTree Tree = buildInfluenceTree(K, InfluenceOptions());
      SchedulerOptions Options;
      SchedulerResult R = scheduleKernel(K, Options, &Tree);
      Agg.IlpSolves += R.Stats.IlpSolves;
      Agg.IlpFailures += R.Stats.IlpFailures;
      Agg.SiblingMoves += R.Stats.SiblingMoves;
      Agg.AncestorBacktracks += R.Stats.AncestorBacktracks;
      Agg.BandBreaks += R.Stats.BandBreaks;
      Agg.SccCuts += R.Stats.SccCuts;
      Abandoned += R.Stats.TreeAbandoned;
    }
    std::printf("%-12s | %5zu | %8u %8u | %8u %8u %8u %8u %5u\n",
                Suite.Name.c_str(), Suite.Operators.size(), Agg.IlpSolves,
                Agg.IlpFailures, Agg.SiblingMoves, Agg.AncestorBacktracks,
                Agg.BandBreaks, Agg.SccCuts, Abandoned);
    TotalOps += Suite.Operators.size();
    Total.IlpSolves += Agg.IlpSolves;
    Total.IlpFailures += Agg.IlpFailures;
    Total.SiblingMoves += Agg.SiblingMoves;
    Total.AncestorBacktracks += Agg.AncestorBacktracks;
    Total.BandBreaks += Agg.BandBreaks;
    Total.SccCuts += Agg.SccCuts;
    TotalAbandoned += Abandoned;
  }
  std::printf("%-12s | %5u | %8u %8u | %8u %8u %8u %8u %5u\n", "TOTAL",
              TotalOps, Total.IlpSolves, Total.IlpFailures,
              Total.SiblingMoves, Total.AncestorBacktracks,
              Total.BandBreaks, Total.SccCuts, TotalAbandoned);
  std::printf("\nBacktracking activations per operator: sibling=%.2f "
              "ancestor=%.2f (paper: \"only few activations\")\n",
              double(Total.SiblingMoves) / TotalOps,
              double(Total.AncestorBacktracks) / TotalOps);
  return 0;
}
