//===- bench/bench_target.cpp - Cross-target tuning matrix gate -----------===//
//
// Measures what the target backend subsystem (src/target/) buys: tuning
// is target-sensitive, and the fingerprint keeps per-target tuning
// state separate. The run tunes the whole operator corpus once per
// built-in target (v100/a100/p100/cpu-simd) with an exhaustive search
// over the shared space and one shared tuning database, then scores
// every tuned config on every other target (the transfer matrix), and
// gates:
//
//   1. never worse, per target — for every operator and every target
//      the tuned options simulate at or below the paper-default options
//      *on that target* (the existing bench_tune gate, preserved per
//      backend);
//   2. target-sensitive winners — cpu-simd must choose a different
//      tuned encoding than v100 on at least one corpus operator (the
//      cache-line transaction model and additive time model trade off
//      differently than GPU sectors);
//   3. transfer is never super-optimal — a config tuned on target A and
//      scored on target B can only tie or lose to B's own tuned config
//      (both searched the same candidate set, so B's winner is optimal
//      within it); the diagonal of the matrix is exactly 1;
//   4. no aliasing — a warm pass over the shared database must replay
//      all |targets| x |ops| entries byte-identically with zero
//      searches: per-target fingerprints keep the entries apart.
//
// Everything is the analytic cost model; there is no GPU in the loop.
//
//   bench_target [--json=FILE] [--ops=N] [--jobs=N]
//
// The JSON artifact (BENCH_target_matrix.json in CI) records per-target
// per-op rows, the geomean tuning speedup per target, the 4x4 transfer
// matrix (geomean of tuned-on-A-scored-on-B over B's own tuned), and
// the operators where cpu-simd and v100 disagree.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "obs/Metrics.h"
#include "target/Target.h"
#include "tune/Autotuner.h"
#include "tune/Evaluator.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace pinj;

namespace {

struct TargetPass {
  std::string Name;
  std::string Kind;
  std::shared_ptr<const target::TargetModel> Model;
  std::vector<double> BaselineUs;
  std::vector<double> TunedUs;
  std::vector<std::string> Encodings;
  std::vector<PipelineOptions> TunedOpts; ///< For cross-target scoring.
  double GeomeanSpeedup = 1.0;
};

} // namespace

int main(int Argc, char **Argv) {
  const char *JsonPath = nullptr;
  unsigned Limit = 0;
  unsigned Jobs = std::max(1u, std::thread::hardware_concurrency());
  for (int I = 1; I != Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strncmp(Arg, "--json=", 7) == 0)
      JsonPath = Arg + 7;
    else if (std::strncmp(Arg, "--ops=", 6) == 0)
      Limit = static_cast<unsigned>(std::strtoul(Arg + 6, nullptr, 10));
    else if (std::strncmp(Arg, "--jobs=", 7) == 0)
      Jobs = static_cast<unsigned>(std::strtoul(Arg + 7, nullptr, 10));
    else {
      std::fprintf(stderr,
                   "usage: bench_target [--json=FILE] [--ops=N] [--jobs=N]\n");
      return 2;
    }
  }

  std::vector<Kernel> Corpus = tuneBenchCorpus(Limit);
  std::vector<std::string> Names = target::builtinTargetNames();
  tune::SearchSpace Space = tune::defaultSearchSpace();

  std::filesystem::path DbDir =
      std::filesystem::temp_directory_path() /
      ("bench_target-" + std::to_string(::getpid()));
  std::filesystem::remove_all(DbDir);
  std::filesystem::create_directories(DbDir);
  std::string DbPath = (DbDir / "tune.db").string();

  std::printf("target matrix: %zu operators x %zu targets, space %zu "
              "candidates, jobs=%u\n\n",
              Corpus.size(), Names.size(), Space.size(), Jobs);

  // ---- Cold pass: tune the corpus once per target, shared database. --
  std::vector<TargetPass> Passes;
  bool NeverWorseViolated = false;
  auto ColdStart = std::chrono::steady_clock::now();
  {
    tune::TuningDb Db(DbPath);
    tune::Autotuner::Config Cfg;
    Cfg.Strategy = "exhaustive";
    Cfg.MaxEvaluations = Space.size() + 1; // whole space + baseline
    Cfg.Jobs = Jobs;
    Cfg.Db = &Db;
    tune::Autotuner Tuner(std::move(Cfg));

    for (const std::string &Name : Names) {
      TargetPass P;
      P.Name = Name;
      P.Model = target::makeBuiltinTarget(Name);
      if (!P.Model) {
        std::fprintf(stderr, "unknown built-in target '%s'\n", Name.c_str());
        return 2;
      }
      P.Kind = P.Model->kind();

      PipelineOptions Base;
      Base.Target = P.Model;
      double LogSum = 0;
      for (const Kernel &K : Corpus) {
        PipelineOptions Tuned = Base;
        TunedConfig Chosen;
        Tuner.tune(K, Tuned, Chosen);

        double BaselineUs = tune::predictInflTimeUs(K, Base);
        double TunedUs = tune::predictInflTimeUs(K, Tuned);
        if (TunedUs > BaselineUs * (1 + 1e-9)) {
          std::printf("FAIL %-10s %-22s tuned %.3f us > baseline %.3f us\n",
                      Name.c_str(), K.Name.c_str(), TunedUs, BaselineUs);
          NeverWorseViolated = true;
        }
        LogSum += std::log(TunedUs > 0 ? BaselineUs / TunedUs : 1.0);
        P.BaselineUs.push_back(BaselineUs);
        P.TunedUs.push_back(TunedUs);
        P.Encodings.push_back(Chosen.Encoding);
        P.TunedOpts.push_back(std::move(Tuned));
      }
      P.GeomeanSpeedup = std::exp(LogSum / double(Corpus.size()));
      std::printf("%-10s (%-12s) geomean tuning speedup %.3fx\n",
                  P.Name.c_str(), P.Kind.c_str(), P.GeomeanSpeedup);
      Passes.push_back(std::move(P));
    }
  }
  double ColdMs = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - ColdStart)
                      .count();
  std::printf("cold pass: %.1f ms\n\n", ColdMs);

  // ---- Warm pass: every (target, op) replays from the shared db. -----
  obs::MetricsSnapshot BeforeWarm = obs::metrics().snapshot();
  bool WarmViolated = false;
  {
    tune::TuningDb Db(DbPath);
    tune::Autotuner::Config Cfg;
    Cfg.Strategy = "exhaustive";
    Cfg.MaxEvaluations = Space.size() + 1;
    Cfg.Jobs = Jobs;
    Cfg.Db = &Db;
    tune::Autotuner Tuner(std::move(Cfg));
    for (const TargetPass &P : Passes) {
      PipelineOptions Base;
      Base.Target = P.Model;
      for (std::size_t I = 0; I != Corpus.size(); ++I) {
        PipelineOptions Tuned = Base;
        TunedConfig Chosen;
        Tuner.tune(Corpus[I], Tuned, Chosen);
        if (!Chosen.FromDb || Chosen.Encoding != P.Encodings[I]) {
          std::printf("FAIL %-10s %-22s warm replay diverged (from_db=%d, "
                      "'%s' vs '%s')\n",
                      P.Name.c_str(), Corpus[I].Name.c_str(),
                      Chosen.FromDb ? 1 : 0, Chosen.Encoding.c_str(),
                      P.Encodings[I].c_str());
          WarmViolated = true;
        }
      }
    }
  }
  obs::MetricsSnapshot WarmDelta = obs::metrics().snapshot().since(BeforeWarm);
  std::uint64_t WarmHits = WarmDelta.counter("tune.db_hits");
  std::uint64_t WarmSearches = WarmDelta.counter("tune.searches");
  std::size_t WantHits = Passes.size() * Corpus.size();
  std::printf("warm pass: db hits %llu/%zu, searches %llu (per-target "
              "fingerprints keep entries apart)\n\n",
              static_cast<unsigned long long>(WarmHits), WantHits,
              static_cast<unsigned long long>(WarmSearches));

  std::filesystem::remove_all(DbDir);

  // ---- Transfer matrix: tuned on A, scored on B, over B's tuned. -----
  // Cell (A, B) = geomean over ops of score_B(tuned_A) / tuned_B. Both
  // targets searched the same candidate set, so B's own winner is
  // optimal within it and every cell is >= 1; the diagonal is exactly 1.
  std::size_t N = Passes.size();
  std::vector<std::vector<double>> Transfer(N, std::vector<double>(N, 1.0));
  bool TransferViolated = false;
  for (std::size_t A = 0; A != N; ++A)
    for (std::size_t B = 0; B != N; ++B) {
      double LogSum = 0;
      for (std::size_t I = 0; I != Corpus.size(); ++I) {
        PipelineOptions Cross = Passes[A].TunedOpts[I];
        Cross.Target = Passes[B].Model;
        double CrossUs = tune::predictInflTimeUs(Corpus[I], Cross);
        double OwnUs = Passes[B].TunedUs[I];
        double Ratio = OwnUs > 0 ? CrossUs / OwnUs : 1.0;
        if (Ratio < 1 - 1e-9) {
          std::printf("FAIL transfer %s->%s beat %s's own tuned on %s "
                      "(%.3f vs %.3f us)\n",
                      Passes[A].Name.c_str(), Passes[B].Name.c_str(),
                      Passes[B].Name.c_str(), Corpus[I].Name.c_str(),
                      CrossUs, OwnUs);
          TransferViolated = true;
        }
        LogSum += std::log(Ratio);
      }
      Transfer[A][B] = std::exp(LogSum / double(Corpus.size()));
      if (A == B && std::fabs(Transfer[A][B] - 1.0) > 1e-9) {
        std::printf("FAIL transfer diagonal %s is %.9f, not 1\n",
                    Passes[A].Name.c_str(), Transfer[A][B]);
        TransferViolated = true;
      }
    }

  std::printf("transfer matrix (tuned on row, scored on column; geomean "
              "over column's own tuned):\n%-10s", "");
  for (const TargetPass &P : Passes)
    std::printf(" %9s", P.Name.c_str());
  std::printf("\n");
  for (std::size_t A = 0; A != N; ++A) {
    std::printf("%-10s", Passes[A].Name.c_str());
    for (std::size_t B = 0; B != N; ++B)
      std::printf(" %9.4f", Transfer[A][B]);
    std::printf("\n");
  }

  // ---- Different-winner gate: cpu-simd vs v100. ---------------------
  std::size_t Cpu = N, V100 = N;
  for (std::size_t I = 0; I != N; ++I) {
    if (Passes[I].Name == "cpu-simd")
      Cpu = I;
    if (Passes[I].Name == "v100")
      V100 = I;
  }
  std::vector<std::string> DifferentWinners;
  if (Cpu != N && V100 != N)
    for (std::size_t I = 0; I != Corpus.size(); ++I)
      if (Passes[Cpu].Encodings[I] != Passes[V100].Encodings[I])
        DifferentWinners.push_back(Corpus[I].Name);
  std::printf("\ncpu-simd vs v100: different tuned winner on %zu/%zu "
              "operators\n",
              DifferentWinners.size(), Corpus.size());
  for (const std::string &Op : DifferentWinners)
    std::printf("  %s\n", Op.c_str());

  // ---- Gates. -------------------------------------------------------
  int Failures = 0;
  if (NeverWorseViolated) {
    std::printf("GATE FAIL: a tuned config was worse than baseline on its "
                "own target\n");
    ++Failures;
  }
  if (Cpu == N || V100 == N || DifferentWinners.empty()) {
    std::printf("GATE FAIL: cpu-simd and v100 chose identical winners on "
                "every operator\n");
    ++Failures;
  }
  if (TransferViolated) {
    std::printf("GATE FAIL: transfer matrix inconsistent with per-target "
                "optimality\n");
    ++Failures;
  }
  if (WarmViolated || WarmHits != WantHits || WarmSearches != 0) {
    std::printf("GATE FAIL: warm pass searched instead of replaying "
                "(fingerprint aliasing?)\n");
    ++Failures;
  }
  bool Pass = Failures == 0;
  if (Pass)
    std::printf("all target matrix gates passed\n");

  if (JsonPath) {
    std::FILE *F = std::fopen(JsonPath, "w");
    if (!F) {
      std::fprintf(stderr, "cannot write %s\n", JsonPath);
      return 2;
    }
    std::fprintf(F, "{\n  \"targets\": [\n");
    for (std::size_t T = 0; T != N; ++T) {
      const TargetPass &P = Passes[T];
      std::fprintf(F,
                   "    {\"name\": \"%s\", \"kind\": \"%s\", "
                   "\"geomean_speedup\": %.6f, \"ops\": [\n",
                   P.Name.c_str(), P.Kind.c_str(), P.GeomeanSpeedup);
      for (std::size_t I = 0; I != Corpus.size(); ++I)
        std::fprintf(F,
                     "      {\"name\": \"%s\", \"baseline_us\": %.6f, "
                     "\"tuned_us\": %.6f, \"encoding\": \"%s\"}%s\n",
                     Corpus[I].Name.c_str(), P.BaselineUs[I], P.TunedUs[I],
                     P.Encodings[I].c_str(),
                     I + 1 == Corpus.size() ? "" : ",");
      std::fprintf(F, "    ]}%s\n", T + 1 == N ? "" : ",");
    }
    std::fprintf(F, "  ],\n  \"transfer\": [\n");
    for (std::size_t A = 0; A != N; ++A)
      for (std::size_t B = 0; B != N; ++B)
        std::fprintf(F,
                     "    {\"tuned_on\": \"%s\", \"scored_on\": \"%s\", "
                     "\"geomean_ratio\": %.6f}%s\n",
                     Passes[A].Name.c_str(), Passes[B].Name.c_str(),
                     Transfer[A][B],
                     A + 1 == N && B + 1 == N ? "" : ",");
    std::fprintf(F, "  ],\n  \"different_winner_ops\": [");
    for (std::size_t I = 0; I != DifferentWinners.size(); ++I)
      std::fprintf(F, "%s\"%s\"", I ? ", " : "",
                   DifferentWinners[I].c_str());
    std::fprintf(F, "],\n  \"pass\": %s\n}\n", Pass ? "true" : "false");
    std::fclose(F);
    std::printf("wrote %s\n", JsonPath);
  }
  return Pass ? 0 : 1;
}
