//===- bench/bench_daemon.cpp - Compilation-daemon benchmark --------------===//
//
// Measures the hardened daemon (src/service/Daemon.h) the way a client
// fleet sees it:
//
//   1. throughput + latency — a zipfian request stream over the
//      operator corpus against the async worker pool, with client-side
//      p50/p99 latency (submit to terminal response) and the cache hit
//      rate the skew buys;
//   2. overload — the same daemon driven at 2x its measured capacity
//      with a small admission queue, where the bounded-queue shed
//      policy (not latency collapse) must absorb the excess.
//
// Gates (exit 1 on violation):
//   - every submitted request gets exactly one terminal response, in
//     both phases;
//   - the zipfian stream hits the cache more than half the time;
//   - at 2x overload some requests shed (the queue bounds, it does not
//     buffer without limit).
//
// The JSON artifact (--json=FILE) lands the numbers for CI:
//   {requests, throughput_rps, p50_us, p99_us, hit_rate, shed_rate_2x,
//    workers}.
//
//   bench_daemon [--requests=N] [--workers=N] [--json=FILE]
//
//===----------------------------------------------------------------------===//

#include "ir/Printer.h"
#include "obs/Json.h"
#include "ops/OpFactory.h"
#include "pipeline/Pipeline.h"
#include "service/Daemon.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

using namespace pinj;

namespace {

using Clock = std::chrono::steady_clock;

double msBetween(Clock::time_point From, Clock::time_point To) {
  return std::chrono::duration<double, std::milli>(To - From).count();
}

/// Deterministic xorshift64 so runs are comparable.
struct Rng {
  std::uint64_t S;
  explicit Rng(std::uint64_t Seed) : S(Seed ? Seed : 1) {}
  std::uint64_t next() {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    return S;
  }
  double uniform() { return (next() >> 11) * (1.0 / (1ull << 53)); }
};

/// The request corpus: factory operators at daemon-friendly sizes.
std::vector<Kernel> buildKernels() {
  std::vector<Kernel> Kernels;
  Kernels.push_back(makeFusedMulSubMulTensorAdd(32));
  Kernels.push_back(makeElementwiseChain("ew_chain_a", 32, 64, 2, 1));
  Kernels.push_back(makeElementwiseChain("ew_chain_b", 48, 48, 3, 2));
  Kernels.push_back(makeBiasActivation("bias_a", 32, 64, 1));
  Kernels.push_back(makeBiasActivation("bias_b", 48, 32, 2));
  Kernels.push_back(makeHostileOrderCopy("hostile_a", 32, 48, 1));
  Kernels.push_back(makeHostileOrderCopy("hostile_b", 48, 64, 2));
  Kernels.push_back(makeReduceTail("reduce_a", 32, 64, 1));
  Kernels.push_back(makeSoftmaxLike("softmax_a", 24, 48));
  Kernels.push_back(makeProducerConsumerPair("prodcons_a", 32, 48, 1));
  return Kernels;
}

/// Pre-renders \p Kernels to escaped request-line kernel text.
std::vector<std::string> renderCorpus(const std::vector<Kernel> &Kernels) {
  std::vector<std::string> Texts;
  for (const Kernel &K : Kernels) {
    std::string Error;
    std::optional<std::string> Text = printPinj(K, Error);
    if (!Text) {
      std::fprintf(stderr, "corpus kernel failed to print: %s\n",
                   Error.c_str());
      std::exit(1);
    }
    Texts.push_back(obs::json::escape(*Text));
  }
  return Texts;
}

/// Mean uncached compile time over the corpus, single-threaded — the
/// denominator of the daemon's cold capacity estimate.
double meanColdCompileMs(const std::vector<Kernel> &Kernels) {
  PipelineOptions Options;
  Clock::time_point Start = Clock::now();
  for (const Kernel &K : Kernels)
    runOperator(K, Options);
  return msBetween(Start, Clock::now()) / Kernels.size();
}

/// Zipf(1) sampling: rank r drawn with weight 1/(r+1), so a handful of
/// hot operators dominate — the distribution a serving fleet sees, and
/// what makes the cache tier earn its hit rate.
std::size_t zipf(Rng &R, const std::vector<double> &Cdf) {
  double U = R.uniform() * Cdf.back();
  return std::lower_bound(Cdf.begin(), Cdf.end(), U) - Cdf.begin();
}

/// Everything one driven phase records, client-side.
struct PhaseResult {
  std::size_t Submitted = 0;
  std::size_t Responses = 0;
  std::size_t Ok = 0;
  std::size_t Shed = 0;
  std::size_t Hits = 0;
  double WallMs = 0;
  std::vector<double> LatencyUs; ///< Submit-to-response, ok responses.
};

/// Drives \p Requests zipfian requests through a fresh daemon built
/// from \p Cfg; \p PacedRps > 0 spaces submissions to that offered rate
/// (the overload phase), 0 submits as fast as intake accepts.
PhaseResult drive(service::DaemonConfig Cfg,
                  const std::vector<std::string> &Corpus,
                  std::size_t Requests, double PacedRps,
                  std::uint64_t Seed) {
  std::vector<double> Cdf;
  for (std::size_t I = 0; I != Corpus.size(); ++I)
    Cdf.push_back((Cdf.empty() ? 0.0 : Cdf.back()) + 1.0 / (I + 1));

  PhaseResult Out;
  Rng R(Seed);
  std::mutex Mu;
  std::condition_variable AllAnswered;
  std::vector<Clock::time_point> SubmitAt(Requests + 1);
  service::Daemon D(Cfg);
  D.start([&](const std::string &Line) {
    Clock::time_point Now = Clock::now();
    std::lock_guard<std::mutex> Lock(Mu);
    if (++Out.Responses == Requests)
      AllAnswered.notify_all();
    std::string Error;
    std::optional<obs::json::Value> V = obs::json::parse(Line, Error);
    if (!V)
      return;
    const obs::json::Value *Status = V->find("status");
    std::string S = Status && Status->isString() ? Status->Str : "";
    if (S == "ok") {
      ++Out.Ok;
      const obs::json::Value *Cache = V->find("cache");
      if (Cache && Cache->isString() && Cache->Str == "hit")
        ++Out.Hits;
      const obs::json::Value *LineNo = V->find("line");
      if (LineNo && LineNo->isNumber()) {
        std::size_t N = static_cast<std::size_t>(LineNo->Num);
        if (N >= 1 && N <= Requests)
          Out.LatencyUs.push_back(msBetween(SubmitAt[N], Now) * 1000.0);
      }
    } else if (S == "shed") {
      ++Out.Shed;
    }
  });

  Clock::time_point Start = Clock::now();
  for (std::size_t I = 0; I != Requests; ++I) {
    if (PacedRps > 0) {
      Clock::time_point Due =
          Start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(I / PacedRps));
      std::this_thread::sleep_until(Due);
    }
    std::string Line = "{\"id\":\"b" + std::to_string(I) +
                       "\",\"kernel\":\"" + Corpus[zipf(R, Cdf)] + "\"}";
    SubmitAt[I + 1] = Clock::now();
    D.submitLine(Line);
    ++Out.Submitted;
  }
  // Every admitted request gets a worker-delivered terminal response;
  // wait for the full count before draining, so the drain never
  // converts queued work into `draining` sheds and the wall time spans
  // exactly the serving of the stream.
  {
    std::unique_lock<std::mutex> Lock(Mu);
    AllAnswered.wait_for(Lock, std::chrono::seconds(300),
                         [&] { return Out.Responses >= Requests; });
  }
  Out.WallMs = msBetween(Start, Clock::now());
  D.drainAndStop();
  return Out;
}

double percentile(std::vector<double> Values, double P) {
  if (Values.empty())
    return 0;
  std::sort(Values.begin(), Values.end());
  std::size_t Idx = static_cast<std::size_t>(P * (Values.size() - 1));
  return Values[Idx];
}

} // namespace

int main(int Argc, char **Argv) {
  std::size_t Requests = 300;
  std::size_t Workers = std::min<std::size_t>(
      4, std::max(2u, std::thread::hardware_concurrency()));
  std::string JsonPath;
  for (int I = 1; I != Argc; ++I) {
    if (std::strncmp(Argv[I], "--requests=", 11) == 0)
      Requests = std::strtoul(Argv[I] + 11, nullptr, 10);
    else if (std::strncmp(Argv[I], "--workers=", 10) == 0)
      Workers = std::strtoul(Argv[I] + 10, nullptr, 10);
    else if (std::strncmp(Argv[I], "--json=", 7) == 0)
      JsonPath = Argv[I] + 7;
  }

  std::vector<Kernel> Kernels = buildKernels();
  std::vector<std::string> Corpus = renderCorpus(Kernels);
  std::printf("compilation daemon benchmark: %zu requests, %zu workers, "
              "%zu-operator zipfian corpus\n\n",
              Requests, Workers, Corpus.size());

  // --- Phase 1: throughput and latency, no admission pressure. -------
  service::DaemonConfig Cfg;
  Cfg.Workers = Workers;
  Cfg.Admission.QueueCapacity = Requests + 1; // Nothing sheds here.
  PhaseResult T = drive(Cfg, Corpus, Requests, /*PacedRps=*/0, 42);

  double Rps = T.WallMs > 0 ? T.Submitted / (T.WallMs / 1000.0) : 0;
  double HitRate = T.Ok ? static_cast<double>(T.Hits) / T.Ok : 0;
  double P50 = percentile(T.LatencyUs, 0.50);
  double P99 = percentile(T.LatencyUs, 0.99);
  std::printf("  throughput  %8.1f req/s   (%zu requests in %.1f ms)\n",
              Rps, T.Submitted, T.WallMs);
  std::printf("  latency     p50 %8.0f us   p99 %8.0f us\n", P50, P99);
  std::printf("  cache       %.1f%% hit rate over the zipfian stream\n",
              HitRate * 100);

  // --- Phase 2: 2x overload against a small queue. -------------------
  // Capacity is what the pool can actually compile with the cache off
  // (every request costs a full schedule), calibrated directly from
  // single-threaded cold compiles. Offered load is twice that against
  // an 8-deep queue; the shed policy must absorb the excess.
  double ColdMs = meanColdCompileMs(Kernels);
  double ColdRps = Workers * 1000.0 / std::max(ColdMs, 0.01);
  service::DaemonConfig Overload;
  Overload.Workers = Workers;
  Overload.Admission.QueueCapacity = 8;
  Overload.Cache.Capacity = 0; // Every request compiles cold.
  std::size_t OverloadRequests = std::min<std::size_t>(Requests, 120);
  PhaseResult O =
      drive(Overload, Corpus, OverloadRequests, 2.0 * ColdRps, 43);
  double ShedRate =
      O.Submitted ? static_cast<double>(O.Shed) / O.Submitted : 0;
  std::printf("\n  overload    offered %.1f req/s (2x est. capacity), "
              "shed %.1f%% (%zu of %zu)\n",
              2.0 * ColdRps, ShedRate * 100, O.Shed, O.Submitted);

  // --- Gates. --------------------------------------------------------
  bool ResponsesOk =
      T.Responses == T.Submitted && O.Responses == O.Submitted;
  bool HitOk = HitRate > 0.5;
  bool ShedOk = O.Shed > 0;
  std::printf("\n  every request answered exactly once: %s\n",
              ResponsesOk ? "yes" : "NO");
  std::printf("  zipfian hit rate %s the 50%% bar\n",
              HitOk ? "meets" : "MISSES");
  std::printf("  2x overload sheds: %s\n", ShedOk ? "yes" : "NO");

  if (!JsonPath.empty()) {
    std::ofstream Out(JsonPath);
    Out << "{\n"
        << "  \"requests\": " << T.Submitted << ",\n"
        << "  \"workers\": " << Workers << ",\n"
        << "  \"throughput_rps\": " << obs::json::number(Rps) << ",\n"
        << "  \"p50_us\": " << obs::json::number(P50) << ",\n"
        << "  \"p99_us\": " << obs::json::number(P99) << ",\n"
        << "  \"hit_rate\": " << obs::json::number(HitRate) << ",\n"
        << "  \"shed_rate_2x\": " << obs::json::number(ShedRate) << "\n"
        << "}\n";
    std::printf("\n  wrote %s\n", JsonPath.c_str());
  }
  return ResponsesOk && HitOk && ShedOk ? 0 : 1;
}
