//===- bench/bench_tune.cpp - Autotuning benchmark & gate -----------------===//
//
// Measures what the autotuner (src/tune/) buys on the generated
// operator corpus, and enforces the subsystem's contract:
//
//   1. never worse — for every operator the tuned options' simulated
//      infl time is <= the paper-default options' time (exit 1
//      otherwise);
//   2. measurably better — the geometric-mean speedup over the corpus
//      must clear 1.01x, with at least one operator improved (the
//      vector-width cap and thread-budget knobs are known wins on the
//      reduce-tail and hostile-order shapes);
//   3. warm replay — a second pass over the same tuning database must
//      answer every operator from the database (tune.db_hits), skip all
//      searches, and reproduce byte-identical encodings.
//
// Everything is the analytic cost model; there is no GPU in the loop.
//
//   bench_tune [--strategy=greedy] [--budget=64] [--ops=N] [--jobs=N]
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "obs/Metrics.h"
#include "tune/Autotuner.h"
#include "tune/Evaluator.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace pinj;

namespace {

struct OpResult {
  std::string Name;
  double BaselineUs = 0;
  double TunedUs = 0;
  std::string Encoding;
};

} // namespace

int main(int Argc, char **Argv) {
  std::string Strategy = "greedy";
  std::size_t Budget = 64;
  unsigned Limit = 0;
  unsigned Jobs = std::max(1u, std::thread::hardware_concurrency());
  for (int I = 1; I != Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strncmp(Arg, "--strategy=", 11) == 0)
      Strategy = Arg + 11;
    else if (std::strncmp(Arg, "--budget=", 9) == 0)
      Budget = std::strtoull(Arg + 9, nullptr, 10);
    else if (std::strncmp(Arg, "--ops=", 6) == 0)
      Limit = static_cast<unsigned>(std::strtoul(Arg + 6, nullptr, 10));
    else if (std::strncmp(Arg, "--jobs=", 7) == 0)
      Jobs = static_cast<unsigned>(std::strtoul(Arg + 7, nullptr, 10));
    else {
      std::fprintf(stderr,
                   "usage: bench_tune [--strategy=NAME] [--budget=N] "
                   "[--ops=N] [--jobs=N]\n");
      return 2;
    }
  }

  std::vector<Kernel> Corpus = tuneBenchCorpus(Limit);
  std::filesystem::path DbDir =
      std::filesystem::temp_directory_path() /
      ("bench_tune-" + std::to_string(::getpid()));
  std::filesystem::remove_all(DbDir);
  std::filesystem::create_directories(DbDir);
  std::string DbPath = (DbDir / "tune.db").string();

  std::printf("autotuning %zu operators (strategy=%s, budget=%zu, "
              "jobs=%u)\n\n",
              Corpus.size(), Strategy.c_str(), Budget, Jobs);

  // ---- Cold pass: search every operator, gate never-worse. ----------
  std::vector<OpResult> Results;
  bool NeverWorseViolated = false;
  double LogSum = 0;
  unsigned Improved = 0;
  auto ColdStart = std::chrono::steady_clock::now();
  {
    tune::TuningDb Db(DbPath);
    tune::Autotuner::Config Cfg;
    Cfg.Strategy = Strategy;
    Cfg.MaxEvaluations = Budget;
    Cfg.Jobs = Jobs;
    Cfg.Db = &Db;
    tune::Autotuner Tuner(std::move(Cfg));

    for (const Kernel &K : Corpus) {
      PipelineOptions Base;
      PipelineOptions Tuned = Base;
      TunedConfig Chosen;
      Tuner.tune(K, Tuned, Chosen);

      OpResult R;
      R.Name = K.Name;
      R.BaselineUs = tune::predictInflTimeUs(K, Base);
      R.TunedUs = tune::predictInflTimeUs(K, Tuned);
      R.Encoding = Chosen.Encoding;
      // Never-worse: the applied options must simulate at or below the
      // paper default (identical when the encoding is "baseline").
      if (R.TunedUs > R.BaselineUs * (1 + 1e-9)) {
        std::printf("FAIL %-22s tuned %.3f us > baseline %.3f us\n",
                    R.Name.c_str(), R.TunedUs, R.BaselineUs);
        NeverWorseViolated = true;
      }
      double Speedup = R.TunedUs > 0 ? R.BaselineUs / R.TunedUs : 1.0;
      LogSum += std::log(Speedup);
      Improved += Speedup > 1.0 ? 1 : 0;
      std::printf("%-22s baseline %8.3f us  tuned %8.3f us  %5.2fx  %s\n",
                  R.Name.c_str(), R.BaselineUs, R.TunedUs, Speedup,
                  R.Encoding == "baseline" ? "-" : R.Encoding.c_str());
      Results.push_back(std::move(R));
    }
  }
  double ColdMs = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - ColdStart)
                      .count();
  double Geomean = std::exp(LogSum / double(Results.size()));
  std::printf("\ncold pass: %.1f ms, geomean speedup %.3fx, %u/%zu "
              "operators improved\n",
              ColdMs, Geomean, Improved, Results.size());

  // ---- Warm pass: everything must replay from the database. ---------
  obs::MetricsSnapshot BeforeWarm = obs::metrics().snapshot();
  bool WarmViolated = false;
  auto WarmStart = std::chrono::steady_clock::now();
  {
    tune::TuningDb Db(DbPath);
    tune::Autotuner::Config Cfg;
    Cfg.Strategy = Strategy;
    Cfg.MaxEvaluations = Budget;
    Cfg.Jobs = Jobs;
    Cfg.Db = &Db;
    tune::Autotuner Tuner(std::move(Cfg));
    for (std::size_t I = 0; I < Corpus.size(); ++I) {
      PipelineOptions Tuned;
      TunedConfig Chosen;
      Tuner.tune(Corpus[I], Tuned, Chosen);
      if (!Chosen.FromDb || Chosen.Encoding != Results[I].Encoding) {
        std::printf("FAIL %-22s warm replay diverged (from_db=%d, %s)\n",
                    Results[I].Name.c_str(), Chosen.FromDb ? 1 : 0,
                    Chosen.Encoding.c_str());
        WarmViolated = true;
      }
    }
  }
  double WarmMs = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - WarmStart)
                      .count();
  obs::MetricsSnapshot WarmDelta =
      obs::metrics().snapshot().since(BeforeWarm);
  std::uint64_t WarmHits = WarmDelta.counter("tune.db_hits");
  std::uint64_t WarmSearches = WarmDelta.counter("tune.searches");
  std::printf("warm pass: %.1f ms (%.1fx over cold), db hits %llu/%zu, "
              "searches %llu\n",
              WarmMs, WarmMs > 0 ? ColdMs / WarmMs : 0.0,
              static_cast<unsigned long long>(WarmHits), Corpus.size(),
              static_cast<unsigned long long>(WarmSearches));

  std::filesystem::remove_all(DbDir);

  // ---- Gates. -------------------------------------------------------
  int Failures = 0;
  if (NeverWorseViolated) {
    std::printf("GATE FAIL: a tuned config was worse than baseline\n");
    ++Failures;
  }
  if (Geomean < 1.01 || Improved == 0) {
    std::printf("GATE FAIL: geomean %.3fx below 1.01x (improved %u)\n",
                Geomean, Improved);
    ++Failures;
  }
  if (WarmViolated || WarmHits != Corpus.size() || WarmSearches != 0) {
    std::printf("GATE FAIL: warm pass searched instead of replaying\n");
    ++Failures;
  }
  if (Failures == 0)
    std::printf("all tuning gates passed\n");
  return Failures == 0 ? 0 : 1;
}
