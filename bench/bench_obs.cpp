//===- bench/bench_obs.cpp - Observability overhead gate ------------------===//
//
// Measures what always-on observability costs: the factory corpus is
// compiled repeatedly with the journal + file sink + periodic exposition
// writer fully enabled and fully disabled, interleaved so machine drift
// hits both sides equally, and the smaller of two noise-robust ratio
// estimates is compared against the allowed overhead (default 5%) — the
// contract that lets a fleet leave the journal on in production.
//
//   bench_obs [--reps=N] [--ops=N] [--max-overhead-pct=X] [--json=FILE]
//
// The JSON artifact records every sample plus the medians and verdict,
// so CI can archive the trajectory.
//
//===----------------------------------------------------------------------===//

#include "obs/Exposition.h"
#include "obs/Journal.h"
#include "ops/OpFactory.h"
#include "service/BatchCompiler.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

using namespace pinj;

namespace {

double nowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The full factory corpus (mirrors bench_service's; size capped by
/// --ops). The whole corpus keeps each timed rep large enough that the
/// scheduler-noise floor of a shared machine stays well under the
/// overhead budget being measured.
std::vector<service::BatchJob> buildJobs(unsigned Limit) {
  std::vector<Kernel> Corpus;
  Corpus.push_back(makeFusedMulSubMulTensorAdd(64));
  Corpus.push_back(makeFusedMulSubMulTensorAdd(96));
  Corpus.push_back(makeElementwiseChain("ew_chain_short", 64, 128, 2, 1));
  Corpus.push_back(makeElementwiseChain("ew_chain_mid", 96, 96, 4, 2));
  Corpus.push_back(makeElementwiseChain("ew_chain_long", 64, 192, 6, 3));
  Corpus.push_back(makeElementwiseChain("ew_chain_wide", 32, 256, 3, 4));
  Corpus.push_back(makeBiasActivation("bias_relu", 64, 128, 1));
  Corpus.push_back(makeBiasActivation("bias_act_2", 96, 64, 2));
  Corpus.push_back(makeBiasActivation("bias_act_3", 128, 96, 3));
  Corpus.push_back(makeHostileOrderCopy("hostile_copy_a", 64, 96, 1));
  Corpus.push_back(makeHostileOrderCopy("hostile_copy_b", 96, 128, 2));
  Corpus.push_back(
      makeHostileOrderPermute3D("hostile_permute_a", 8, 32, 48, 1));
  Corpus.push_back(
      makeHostileOrderPermute3D("hostile_permute_b", 16, 24, 32, 2));
  Corpus.push_back(makeMiddlePermuted3D("middle_permuted_a", 8, 24, 64, 1));
  Corpus.push_back(makeMiddlePermuted3D("middle_permuted_b", 12, 16, 96, 2));
  Corpus.push_back(makeReduceTail("reduce_tail_a", 64, 128, 1));
  Corpus.push_back(makeReduceTail("reduce_tail_b", 96, 96, 2));
  Corpus.push_back(makeSoftmaxLike("softmax_like_a", 48, 96));
  Corpus.push_back(makeSoftmaxLike("softmax_like_b", 64, 64));
  Corpus.push_back(makeProducerConsumerPair("prodcons_a", 64, 96, 1));
  Corpus.push_back(makeProducerConsumerPair("prodcons_b", 96, 64, 2));
  Corpus.push_back(makeElementwiseChain("ew_chain_tail", 48, 160, 5, 5));
  if (Limit && Limit < Corpus.size())
    Corpus.resize(Limit);
  std::vector<service::BatchJob> Jobs;
  Jobs.reserve(Corpus.size());
  for (Kernel &K : Corpus)
    Jobs.push_back(service::BatchJob{std::move(K)});
  return Jobs;
}

double median(std::vector<double> V) {
  std::sort(V.begin(), V.end());
  std::size_t N = V.size();
  return N == 0 ? 0
         : N % 2 ? V[N / 2]
                 : (V[N / 2 - 1] + V[N / 2]) / 2;
}

double minimum(const std::vector<double> &V) {
  return V.empty() ? 0 : *std::min_element(V.begin(), V.end());
}

/// One timed sample: several corpus compilations back to back (single
/// worker: the gate measures per-event cost, not pool contention). A
/// single pass is ~100 ms, short enough that scheduler noise on a
/// shared core rivals the overhead being measured; several passes per
/// sample average the bursts out.
double runOnceMs(const std::vector<service::BatchJob> &Jobs) {
  constexpr unsigned Passes = 6;
  PipelineOptions Options;
  service::BatchCompiler Compiler(Options, 1);
  double Start = nowMs();
  for (unsigned P = 0; P != Passes; ++P)
    (void)Compiler.run(Jobs);
  return nowMs() - Start;
}

std::string jsonArray(const std::vector<double> &V) {
  std::string Out = "[";
  for (std::size_t I = 0; I != V.size(); ++I) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%s%.3f", I ? "," : "", V[I]);
    Out += Buf;
  }
  return Out + "]";
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Reps = 11;
  unsigned Limit = 0;
  double MaxOverheadPct = 5.0;
  std::string JsonPath;
  for (int I = 1; I != Argc; ++I) {
    if (std::strncmp(Argv[I], "--reps=", 7) == 0)
      Reps = static_cast<unsigned>(std::strtoul(Argv[I] + 7, nullptr, 10));
    else if (std::strncmp(Argv[I], "--ops=", 6) == 0)
      Limit = static_cast<unsigned>(std::strtoul(Argv[I] + 6, nullptr, 10));
    else if (std::strncmp(Argv[I], "--max-overhead-pct=", 19) == 0)
      MaxOverheadPct = std::strtod(Argv[I] + 19, nullptr);
    else if (std::strncmp(Argv[I], "--json=", 7) == 0)
      JsonPath = Argv[I] + 7;
  }
  if (Reps == 0)
    Reps = 1;

  std::vector<service::BatchJob> Jobs = buildJobs(Limit);
  std::printf("observability overhead gate: %zu operators, %u reps, "
              "%.1f%% budget\n\n",
              Jobs.size(), Reps, MaxOverheadPct);

  namespace fs = std::filesystem;
  fs::path Scratch =
      fs::temp_directory_path() / "polyinject_bench_obs";
  std::error_code Ec;
  fs::remove_all(Scratch, Ec);
  fs::create_directories(Scratch, Ec);
  const std::string JournalPath = (Scratch / "journal.jsonl").string();
  const std::string ExpoPath = (Scratch / "metrics.prom").string();

  // Warm-up: populate allocator pools and code caches outside the
  // measurement so the first measured rep is not special (two rounds:
  // the first reps otherwise still ride the frequency/cache ramp).
  (void)runOnceMs(Jobs);
  (void)runOnceMs(Jobs);

  // One full measurement: interleaved off/on samples, alternating the
  // order each rep so slow thermal/frequency drift cancels from the
  // comparison. A burst on a shared core only ever *adds* time, so the
  // two ratio estimates computed afterwards are both biased upward,
  // each with a different breakdown mode, and the gate takes the
  // smaller:
  //  * ratio of per-side minima: exact when each side caught at least
  //    one clean rep; breaks when every rep of one side was hit.
  //  * median of per-rep on/off ratios: drift-immune (the two sides of
  //    a rep run back to back); breaks when bursts contaminate more
  //    than half the reps.
  // A real regression inflates both, so min() still catches it. An
  // attempt that still exceeds the budget is remeasured from scratch
  // (bounded retries): noise rarely survives three independent
  // measurements, a real regression always does.
  std::vector<double> OffMs, OnMs;
  double MedOff = 0, MedOn = 0, MinOff = 0, MinOn = 0;
  double MinRatioPct = 0, MedianRatioPct = 0, OverheadPct = 0;
  bool Pass = false;
  constexpr unsigned MaxAttempts = 3;
  for (unsigned Attempt = 0; Attempt != MaxAttempts && !Pass; ++Attempt) {
    OffMs.clear();
    OnMs.clear();
    for (unsigned Rep = 0; Rep != Reps; ++Rep) {
      auto MeasureOff = [&]() {
        obs::Journal::get().disable();
        obs::Journal::get().closeFile();
        OffMs.push_back(runOnceMs(Jobs));
      };
      auto MeasureOn = [&]() {
        std::string Error;
        obs::Journal::get().enable();
        if (!obs::Journal::get().openFile(JournalPath, Error)) {
          std::fprintf(stderr, "error: %s\n", Error.c_str());
          return;
        }
        obs::ExpositionWriter Writer;
        // A production-shaped scrape cadence: frequent enough that
        // every rep sees periodic writes, far from the pathological
        // every-scheduler-quantum end.
        Writer.start(ExpoPath, /*IntervalMs=*/100);
        OnMs.push_back(runOnceMs(Jobs));
        Writer.stop();
        obs::Journal::get().closeFile();
        obs::Journal::get().disable();
        obs::Journal::get().reset();
      };
      if (Rep % 2 == 0) {
        MeasureOff();
        MeasureOn();
      } else {
        MeasureOn();
        MeasureOff();
      }
    }

    MedOff = median(OffMs);
    MedOn = median(OnMs);
    MinOff = minimum(OffMs);
    MinOn = minimum(OnMs);
    std::vector<double> Ratios;
    for (std::size_t I = 0; I != OffMs.size() && I != OnMs.size(); ++I)
      if (OffMs[I] > 0)
        Ratios.push_back(OnMs[I] / OffMs[I]);
    MinRatioPct = MinOff > 0 ? 100.0 * (MinOn / MinOff - 1.0) : 0.0;
    MedianRatioPct = 100.0 * (median(Ratios) - 1.0);
    OverheadPct = std::min(MinRatioPct, MedianRatioPct);
    Pass = OverheadPct <= MaxOverheadPct;

    std::printf("attempt %u/%u:\n", Attempt + 1, MaxAttempts);
    std::printf("  off: min %8.1f ms  median %8.1f ms  %s\n", MinOff,
                MedOff, jsonArray(OffMs).c_str());
    std::printf("  on:  min %8.1f ms  median %8.1f ms  %s\n", MinOn,
                MedOn, jsonArray(OnMs).c_str());
    std::printf("  overhead %+.2f%% (min of ratio-of-minima %+.2f%% and "
                "median per-rep ratio %+.2f%%) — %s the %.1f%% budget\n\n",
                OverheadPct, MinRatioPct, MedianRatioPct,
                Pass ? "within" : "EXCEEDS", MaxOverheadPct);
  }

  if (!JsonPath.empty()) {
    std::ofstream Out(JsonPath);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write %s\n", JsonPath.c_str());
      return 1;
    }
    char Buf[512];
    std::snprintf(Buf, sizeof(Buf),
                  "{\"reps\":%u,\"operators\":%zu,"
                  "\"min_off_ms\":%.3f,\"min_on_ms\":%.3f,"
                  "\"median_off_ms\":%.3f,\"median_on_ms\":%.3f,"
                  "\"min_ratio_pct\":%.3f,\"median_ratio_pct\":%.3f,"
                  "\"overhead_pct\":%.3f,\"max_overhead_pct\":%.3f,"
                  "\"pass\":%s,",
                  Reps, Jobs.size(), MinOff, MinOn, MedOff, MedOn,
                  MinRatioPct, MedianRatioPct, OverheadPct,
                  MaxOverheadPct, Pass ? "true" : "false");
    Out << Buf << "\"off_ms\":" << jsonArray(OffMs)
        << ",\"on_ms\":" << jsonArray(OnMs) << "}\n";
  }

  fs::remove_all(Scratch, Ec);
  return Pass ? 0 : 1;
}
